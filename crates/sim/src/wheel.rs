//! A hierarchical timing wheel keyed by `(time, seq)`.
//!
//! The simulator's event queue is append-mostly and pop-in-time-order;
//! a binary heap pays O(log n) per operation and scatters comparisons
//! across the whole arena. This wheel gives O(1) amortized push and
//! pop: eleven levels of 64 slots each cover the full `u64` nanosecond
//! range (6 bits per level, 66 ≥ 64), a one-word occupancy bitmap per
//! level makes the next-slot scan a couple of `trailing_zeros` calls,
//! and events only ever *cascade down* levels, so each entry is touched
//! at most `LEVELS` (11) times over its whole life.
//!
//! ## Ordering contract
//!
//! Pops come out in ascending `(time, seq)` order, bit-for-bit the
//! order `BinaryHeap<Reverse<(time, seq)>>` would produce (pinned by
//! `tests/wheel_differential.rs`), under two caller obligations that
//! the simulator already satisfies:
//!
//! * `time >= now` for every push, where `now` is the time of the most
//!   recent pop (the wheel cannot schedule into the past), and
//! * `seq` values are unique and assigned in increasing push order
//!   (they are a global event counter).
//!
//! Same-time entries live in one level-0 slot; the slot is drained in
//! one go and sorted by `seq` alone, which is exact because every entry
//! in a level-0 slot shares the full timestamp: an entry is placed at
//! level 0 only when its time agrees with `now` on all bits above the
//! slot index, and `now`'s upper bits only change when all lower levels
//! are empty. Pushes *at* the current time while the slot is being
//! consumed re-occupy it and are re-drained afterwards — their `seq` is
//! larger than anything already popped, so order is preserved.

/// Bits per wheel level: 64 slots each.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Low-bits mask selecting a slot index within a level.
const MASK: u64 = SLOTS as u64 - 1;
/// Levels needed so `LEVELS * BITS >= 64`: the top level spans the
/// entire remaining `u64` range.
const LEVELS: usize = 11;

struct Entry<T> {
    time: u64,
    seq: u64,
    payload: T,
}

/// The wheel. See the module docs for the ordering contract.
pub struct TimingWheel<T> {
    /// `LEVELS * SLOTS` buckets, flattened level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// One occupancy bit per slot per level.
    occ: [u64; LEVELS],
    /// Lower bound on every queued time; advances on pop.
    now: u64,
    /// Total queued entries, including the drained current slot.
    len: usize,
    /// The current level-0 slot, drained and sorted by **descending**
    /// `seq` so consumption is `Vec::pop` from the back.
    cur: Vec<Entry<T>>,
}

impl<T> TimingWheel<T> {
    /// An empty wheel anchored at time 0.
    pub fn new() -> TimingWheel<T> {
        let mut slots = Vec::with_capacity(LEVELS * SLOTS);
        slots.resize_with(LEVELS * SLOTS, Vec::new);
        TimingWheel {
            slots,
            occ: [0; LEVELS],
            now: 0,
            len: 0,
            cur: Vec::new(),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `payload` at `(time, seq)`. `time` must be `>= now`
    /// (asserted in debug builds; clamped in release so a buggy caller
    /// degrades to "fires immediately" rather than never).
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        debug_assert!(
            time >= self.now,
            "push into the past: time {} < now {}",
            time,
            self.now
        );
        let time = time.max(self.now);
        self.insert_raw(Entry { time, seq, payload });
        self.len += 1;
    }

    fn insert_raw(&mut self, e: Entry<T>) {
        // The level is chosen by the highest bit where the time differs
        // from `now`: all digits above it agree, so the entry can sit
        // in the slot named by its own digit at that level and will be
        // reached before `now`'s upper digits move past it.
        let diff = e.time ^ self.now;
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) as usize / BITS as usize
        };
        let slot = ((e.time >> (BITS as usize * level)) & MASK) as usize;
        self.occ[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(e);
    }

    /// Ensures `cur` holds the front slot's entries. Returns false iff
    /// the wheel is empty.
    fn fill_cur(&mut self) -> bool {
        if !self.cur.is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        'scan: loop {
            for level in 0..LEVELS {
                let shift = BITS as usize * level;
                let cursor = ((self.now >> shift) & MASK) as u32;
                // Only slots at or after the cursor can be occupied:
                // earlier ones are in the past.
                let w = self.occ[level] & (u64::MAX << cursor);
                if w == 0 {
                    continue;
                }
                let slot = w.trailing_zeros() as usize;
                self.occ[level] &= !(1u64 << slot);
                let mut entries = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                if level == 0 {
                    self.now = (self.now & !MASK) | slot as u64;
                    entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                    self.cur = entries;
                    return true;
                }
                // Cascade: advance `now` to the start of this slot's
                // span (levels below are empty, so no entry is skipped)
                // and re-insert the slot's entries; each lands at a
                // strictly lower level.
                let above = if shift + BITS as usize >= 64 {
                    0
                } else {
                    self.now >> (shift + BITS as usize)
                };
                self.now = ((above << BITS) | slot as u64) << shift;
                for e in entries.drain(..) {
                    self.insert_raw(e);
                }
                continue 'scan;
            }
            unreachable!("timing wheel: len > 0 but no occupied slot");
        }
    }

    /// The front entry's `(time, seq)` and a borrow of its payload.
    ///
    /// Non-mutating on purpose: unlike [`TimingWheel::pop`], a peek
    /// commits to nothing, so the clock does not advance and no slots
    /// cascade. A caller may peek at the next event, decide not to take
    /// it, and still push entries timed before it (as the simulator
    /// does while collecting a same-tick batch). The cost is a bitmap
    /// scan plus a linear pass over one slot's entries — O(1) when the
    /// drained current slot is non-empty.
    pub fn peek(&self) -> Option<(u64, u64, &T)> {
        if let Some(e) = self.cur.last() {
            return Some((e.time, e.seq, &e.payload));
        }
        if self.len == 0 {
            return None;
        }
        // The first occupied slot at the lowest occupied level holds the
        // globally soonest entries: level-L entries differ from `now`
        // exactly in bit range [6L, 6(L+1)), so anything at a higher
        // level lies beyond every lower level's current window.
        for level in 0..LEVELS {
            let shift = BITS as usize * level;
            let cursor = ((self.now >> shift) & MASK) as u32;
            let w = self.occ[level] & (u64::MAX << cursor);
            if w == 0 {
                continue;
            }
            let slot = w.trailing_zeros() as usize;
            let e = self.slots[level * SLOTS + slot]
                .iter()
                .min_by_key(|e| (e.time, e.seq))
                .expect("occupied slot is empty");
            return Some((e.time, e.seq, &e.payload));
        }
        unreachable!("timing wheel: len > 0 but no occupied slot");
    }

    /// Removes and returns the front entry.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if !self.fill_cur() {
            return None;
        }
        let e = self.cur.pop().expect("fill_cur returned true");
        self.len -= 1;
        Some((e.time, e.seq, e.payload))
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> TimingWheel<T> {
        TimingWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wheel_pops_nothing() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.pop().is_none());
        assert!(w.peek().is_none());
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(50, 0, "a");
        w.push(10, 1, "b");
        w.push(50, 2, "c");
        w.push(10, 3, "d");
        let order: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(
            order,
            vec![(10, 1, "b"), (10, 3, "d"), (50, 0, "a"), (50, 2, "c")]
        );
    }

    #[test]
    fn far_future_times_cascade_down_correctly() {
        let mut w = TimingWheel::new();
        let times = [
            0u64,
            63,
            64,
            4095,
            4096,
            1 << 20,
            (1 << 40) + 7,
            (1 << 60) + 12345,
            u64::MAX,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64, t);
        }
        let mut prev = None;
        while let Some((t, _, payload)) = w.pop() {
            assert_eq!(t, payload);
            assert!(prev.is_none_or(|p| p <= t));
            prev = Some(t);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn push_at_current_time_during_drain_pops_after_drained_entries() {
        let mut w = TimingWheel::new();
        w.push(100, 0, 0);
        w.push(100, 1, 1);
        let (t, s, _) = w.pop().unwrap();
        assert_eq!((t, s), (100, 0));
        // The slot is mid-drain; a same-time push must still come out,
        // after the already-queued seq 1.
        w.push(100, 2, 2);
        assert_eq!(w.pop().map(|(t, s, _)| (t, s)), Some((100, 1)));
        assert_eq!(w.pop().map(|(t, s, _)| (t, s)), Some((100, 2)));
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_does_not_advance_the_clock() {
        // Regression: peek used to cascade slots (advancing `now` to the
        // next occupied slot), after which a push timed between the last
        // pop and the peeked entry was "in the past".
        let mut w = TimingWheel::new();
        w.push(200_000_000, 1, "sample");
        w.push(0, 2, "arrive");
        assert_eq!(w.pop().map(|(t, s, _)| (t, s)), Some((0, 2)));
        // Peeking at the far-future event must not commit to it...
        assert_eq!(w.peek().map(|(t, s, _)| (t, s)), Some((200_000_000, 1)));
        // ...so an earlier push is still legal and pops first.
        w.push(20_005_000, 3, "timer");
        assert_eq!(w.peek().map(|(t, s, _)| (t, s)), Some((20_005_000, 3)));
        assert_eq!(w.pop().map(|(t, s, _)| (t, s)), Some((20_005_000, 3)));
        assert_eq!(w.pop().map(|(t, s, _)| (t, s)), Some((200_000_000, 1)));
        assert!(w.is_empty());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut w = TimingWheel::new();
        for i in 0..100u64 {
            w.push(i * 37 % 50, i, ());
        }
        assert_eq!(w.len(), 100);
        // Interleave: pop a few, push ahead of now.
        for _ in 0..40 {
            w.pop().unwrap();
        }
        assert_eq!(w.len(), 60);
        let (now, _, _) = w.peek().unwrap();
        for i in 0..10u64 {
            w.push(now + i, 1000 + i, ());
        }
        assert_eq!(w.len(), 70);
        let mut n = 0;
        while w.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 70);
        assert!(w.is_empty());
    }
}
