//! The discrete-event SMP simulator.
//!
//! The simulator owns a clock (nanoseconds), `p` processors and a set of
//! tasks executing [`Behavior`] state machines. It drives any
//! [`Scheduler`] through exactly the event protocol a kernel would
//! (§3.1): dispatch on idle, `put_prev` on quantum expiry / block /
//! exit, `wake` on sleep timers, with *unsynchronised* quanta across
//! processors — each CPU carries its own quantum deadline, so a blocking
//! task on one CPU never aligns the others.
//!
//! Determinism: all events are ordered by `(time, sequence number)` and
//! all workload randomness is seeded, so a run is a pure function of its
//! configuration. A context-switch overhead (default 5 µs) is charged
//! whenever a CPU switches between different tasks; the quantum starts
//! after the switch completes.
//!
//! ## Mega-scale internals
//!
//! Three structural choices keep the engine O(1)-ish per event at
//! 10⁶–10⁷ tasks (the `repro mega` sweep):
//!
//! * the event queue is a hierarchical [`TimingWheel`], not a binary
//!   heap — O(1) amortized push/pop with the identical `(time, seq)`
//!   total order (pinned by `tests/wheel_differential.rs`);
//! * per-task state lives in a struct-of-arrays `TaskArena` indexed
//!   by dense [`TaskId`]s, so the hot handlers touch one flat `Vec`
//!   lane per field instead of chasing a `HashMap` entry;
//! * all arrival/wake events sharing a tick are drained as one batch
//!   and applied through [`Scheduler::arrive_batch`] /
//!   [`Scheduler::wake_batch`] — consecutive same-operation runs are
//!   grouped (never reordered across a detach or across an op change,
//!   which keeps the scheduler-call order event-equivalent to per-item
//!   application), and the batch pays one dispatch sweep instead of one
//!   per event.

use sfs_core::admit::{AdmissionControl, AdmissionPolicy};
use sfs_core::fault::{FaultKind, FaultPlan};
use sfs_core::gms::FluidGms;
use sfs_core::sched::{select_preemption_victim, Scheduler, SwitchReason};
use sfs_core::task::{CpuId, TaskId, TenantId, Weight};
use sfs_core::time::{Duration, Time};
use sfs_trace::{CounterTrack, TraceEvent, TraceRecorder};
use sfs_workloads::{Behavior, BehaviorSpec, Phase};

use crate::trace::{RunHealth, SimReport, TaskLabel, Trace};
use crate::wheel::TimingWheel;

/// Recording runs flush the local event buffer to the shared recorder
/// whenever it reaches this many events, so a streaming sink can write
/// chunks to disk while the run is still in flight (and a mega-scale
/// traced run never holds the whole event stream in one buffer).
const TRACE_FLUSH_EVENTS: usize = 32 * 1024;

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of processors.
    pub cpus: u32,
    /// Simulated wall-clock length of the run.
    pub duration: Duration,
    /// Cost charged when a CPU switches between different tasks.
    pub ctx_switch: Duration,
    /// Sampling period for the cumulative-service curves.
    pub sample_every: Duration,
    /// Co-simulate the GMS fluid reference and report per-task error.
    pub track_gms: bool,
    /// Base seed for workload randomness.
    pub seed: u64,
    /// Lean mode: skip per-task service curves and response vectors and
    /// report aggregate totals only ([`crate::trace::LeanSummary`]).
    /// The memory floor for 10⁶-task runs.
    pub lean: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            cpus: 2,
            duration: Duration::from_secs(30),
            ctx_switch: Duration::from_micros(5),
            sample_every: Duration::from_millis(500),
            track_gms: false,
            seed: 42,
            lean: false,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EvKind {
    Arrive(usize),
    Kill(usize),
    Wake(TaskId),
    CpuTimer {
        cpu: usize,
        token: u64,
    },
    Sample,
    /// An injected fault (index into the simulator's fault list).
    Fault(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    Running(usize),
    Sleeping,
    Exited,
}

/// Struct-of-arrays task storage, indexed by `TaskId − 1` (ids are
/// allocated densely from 1). Hot per-event fields (`state`,
/// `remaining`, …) are flat `Copy` lanes; the boxed behavior state
/// machine is the one cold, pointer-sized lane.
struct TaskArena {
    weight: Vec<Weight>,
    state: Vec<TState>,
    /// Remaining CPU demand of the current compute phase.
    remaining: Vec<Duration>,
    /// When the task last became runnable (for response times).
    last_wake: Vec<Time>,
    /// A response sample is pending for the current compute phase.
    awaiting_response: Vec<bool>,
    attached: Vec<bool>,
    /// Sequential-stream membership (next job spawns on exit).
    stream: Vec<Option<usize>>,
    /// Tenant group the task attaches under, for hierarchical policies.
    tenant: Vec<Option<TenantId>>,
    /// The task passed admission control (and must release its slot on
    /// exit). Always false when admission is off or the task was
    /// rejected.
    admitted: Vec<bool>,
    /// Pending wake-delay from an injected [`FaultKind::WakeDrop`]:
    /// the task's next wake event is re-posted this much later.
    wake_delay: Vec<Duration>,
    behavior: Vec<Box<dyn Behavior>>,
}

impl TaskArena {
    fn new() -> TaskArena {
        TaskArena {
            weight: Vec::new(),
            state: Vec::new(),
            remaining: Vec::new(),
            last_wake: Vec::new(),
            awaiting_response: Vec::new(),
            attached: Vec::new(),
            stream: Vec::new(),
            tenant: Vec::new(),
            admitted: Vec::new(),
            wake_delay: Vec::new(),
            behavior: Vec::new(),
        }
    }

    #[inline]
    fn idx(id: TaskId) -> usize {
        id.0 as usize - 1
    }

    fn len(&self) -> usize {
        self.behavior.len()
    }

    /// Adds a task in the initial (sleeping, unattached) state and
    /// returns its dense id.
    fn push(
        &mut self,
        weight: Weight,
        tenant: Option<TenantId>,
        stream: Option<usize>,
        behavior: Box<dyn Behavior>,
        now: Time,
    ) -> TaskId {
        self.weight.push(weight);
        self.state.push(TState::Sleeping);
        self.remaining.push(Duration::ZERO);
        self.last_wake.push(now);
        self.awaiting_response.push(false);
        self.attached.push(false);
        self.stream.push(stream);
        self.tenant.push(tenant);
        self.admitted.push(false);
        self.wake_delay.push(Duration::ZERO);
        self.behavior.push(behavior);
        TaskId(self.behavior.len() as u64)
    }
}

#[derive(Debug, Clone, Copy)]
struct Cpu {
    current: Option<TaskId>,
    dispatched_at: Time,
    /// Compute charging starts here (after the context switch).
    last_charge: Time,
    quantum_deadline: Time,
    token: u64,
    last_task: Option<TaskId>,
}

impl Cpu {
    fn idle() -> Cpu {
        Cpu {
            current: None,
            dispatched_at: Time::ZERO,
            last_charge: Time::ZERO,
            quantum_deadline: Time::ZERO,
            token: 0,
            last_task: None,
        }
    }
}

struct PendingArrival {
    label: TaskLabel,
    weight: Weight,
    spec: BehaviorSpec,
    seed: u64,
    tenant: Option<TenantId>,
    stream: Option<usize>,
    spawned: Option<TaskId>,
}

/// A sequential job stream: when one job exits, the next arrives.
struct StreamState {
    /// Interned base name; job `k` renders as `"{base}#{k}"`.
    sym: u32,
    weight: Weight,
    spec: BehaviorSpec,
    gap: Duration,
    until: Time,
    spawned: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    cfg: SimConfig,
    sched: Box<dyn Scheduler>,
    now: Time,
    events: TimingWheel<EvKind>,
    seq: u64,
    cpus: Vec<Cpu>,
    tasks: TaskArena,
    arrivals: Vec<PendingArrival>,
    streams: Vec<StreamState>,
    trace: Trace,
    gms: Option<FluidGms>,
    gms_last: Time,
    ctx_switches: u64,
    events_processed: u64,
    rec: TraceRecorder,
    /// Locally buffered trace events: the simulator is single-threaded,
    /// so events accumulate in a plain `Vec` (one push per event, no
    /// lock) and flush into the shared recorder in [`TRACE_FLUSH_EVENTS`]
    /// chunks — incrementally, so streaming sinks see completed chunks
    /// while the run is in flight.
    trace_buf: Vec<TraceEvent>,
    /// True once any arrived task carries a tenant — lets the slice-end
    /// recording hook skip the per-event tenant lookup in the common
    /// tenant-less case.
    tenants_present: bool,
    /// (readjust_calls, weights_clamped) at the previous sample, for
    /// per-sample `Readjust` epoch deltas when recording.
    last_readjust: (u64, u64),
    /// Admission control state, when the run enforces an
    /// [`AdmissionPolicy`].
    admission: Option<AdmissionControl>,
    /// Injected fault kinds, indexed by [`EvKind::Fault`] payloads.
    fault_kinds: Vec<FaultKind>,
    faults_injected: u64,
    faults_recovered: u64,
    invariant_violations: u64,
}

impl Simulator {
    /// Creates a simulator driving the given scheduling policy.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler's CPU count differs from the config's.
    pub fn new(cfg: SimConfig, sched: Box<dyn Scheduler>) -> Simulator {
        assert_eq!(
            sched.cpus(),
            cfg.cpus,
            "scheduler configured for a different machine"
        );
        let gms = cfg.track_gms.then(|| FluidGms::new(cfg.cpus));
        let trace = if cfg.lean {
            Trace::new_lean()
        } else {
            Trace::default()
        };
        let mut sim = Simulator {
            cpus: vec![Cpu::idle(); cfg.cpus as usize],
            cfg,
            sched,
            now: Time::ZERO,
            events: TimingWheel::new(),
            seq: 0,
            tasks: TaskArena::new(),
            arrivals: Vec::new(),
            streams: Vec::new(),
            trace,
            gms,
            gms_last: Time::ZERO,
            ctx_switches: 0,
            events_processed: 0,
            rec: TraceRecorder::off(),
            trace_buf: Vec::new(),
            tenants_present: false,
            last_readjust: (0, 0),
            admission: None,
            fault_kinds: Vec::new(),
            faults_injected: 0,
            faults_recovered: 0,
            invariant_violations: 0,
        };
        let first_sample = sim.cfg.sample_every;
        sim.post(Time::ZERO + first_sample, EvKind::Sample);
        sim
    }

    /// Attaches an event recorder; every scheduling event of the run is
    /// emitted into it (see the `sfs-trace` crate). The recorder is a
    /// shared handle — keep a clone and call `finish()` after
    /// [`Simulator::run`] to collect the trace.
    #[must_use]
    pub fn with_recorder(mut self, rec: TraceRecorder) -> Simulator {
        if rec.on() {
            // One generous up-front allocation keeps buffer growth (and
            // its page-fault bursts) out of the recorded hot path.
            self.trace_buf.reserve(TRACE_FLUSH_EVENTS);
        }
        self.rec = rec;
        self
    }

    /// Enforces an admission policy on every arrival (see
    /// [`sfs_core::admit`]). Rejected arrivals are still materialised —
    /// they get a task id, a report entry and a `TaskRejected` trace
    /// event — but never attach to the scheduler.
    #[must_use]
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Simulator {
        self.admission = Some(AdmissionControl::new(policy));
        self
    }

    /// Injects a deterministic fault plan (see [`sfs_core::fault`]):
    /// each fault becomes an ordinary event at its scheduled time, so
    /// faulted runs stay pure functions of their configuration.
    #[must_use]
    pub fn with_faults(mut self, plan: &FaultPlan) -> Simulator {
        for ev in plan.sorted() {
            let idx = self.fault_kinds.len();
            self.fault_kinds.push(ev.kind);
            self.post(ev.at, EvKind::Fault(idx));
        }
        self
    }

    /// Schedules a task arrival. Returns the arrival index (usable with
    /// [`Simulator::schedule_kill`]).
    pub fn schedule_arrival(
        &mut self,
        at: Time,
        name: &str,
        weight: Weight,
        spec: BehaviorSpec,
    ) -> usize {
        let sym = self.trace.intern(name);
        self.schedule_arrival_inner(at, TaskLabel { sym, replica: 0 }, weight, spec, None, None)
    }

    /// Schedules a task arrival bound to a tenant group. The task
    /// attaches via [`Scheduler::attach_tenant`], so hierarchical
    /// policies account it to that group; flat policies ignore the
    /// binding. Returns the arrival index.
    pub fn schedule_arrival_tenant(
        &mut self,
        at: Time,
        name: &str,
        weight: Weight,
        spec: BehaviorSpec,
        tenant: Option<TenantId>,
    ) -> usize {
        let sym = self.trace.intern(name);
        self.schedule_arrival_inner(
            at,
            TaskLabel { sym, replica: 0 },
            weight,
            spec,
            tenant,
            None,
        )
    }

    /// Interns a base name for replica arrivals
    /// ([`Simulator::schedule_arrival_replica`]).
    pub(crate) fn intern_name(&mut self, name: &str) -> u32 {
        self.trace.intern(name)
    }

    /// Schedules one replica of a counted task spec: names render as
    /// `"{base}#{replica}"` (or the bare base for replica 0) without
    /// ever building the string — a 10⁶-replica scenario allocates one
    /// interned base name, not 10⁶ `String`s.
    pub(crate) fn schedule_arrival_replica(
        &mut self,
        at: Time,
        sym: u32,
        replica: u32,
        weight: Weight,
        spec: BehaviorSpec,
        tenant: Option<TenantId>,
    ) -> usize {
        self.schedule_arrival_inner(at, TaskLabel { sym, replica }, weight, spec, tenant, None)
    }

    fn schedule_arrival_inner(
        &mut self,
        at: Time,
        label: TaskLabel,
        weight: Weight,
        spec: BehaviorSpec,
        tenant: Option<TenantId>,
        stream: Option<usize>,
    ) -> usize {
        let idx = self.arrivals.len();
        let seed = self
            .cfg
            .seed
            .wrapping_mul(1_000_003)
            .wrapping_add(idx as u64);
        self.arrivals.push(PendingArrival {
            label,
            weight,
            spec,
            seed,
            tenant,
            stream,
            spawned: None,
        });
        self.post(at, EvKind::Arrive(idx));
        idx
    }

    /// Schedules a kill of the task created by arrival `idx`.
    pub fn schedule_kill(&mut self, at: Time, idx: usize) {
        self.post(at, EvKind::Kill(idx));
    }

    /// Registers a sequential job stream: the first job arrives at
    /// `first`, and each subsequent job arrives `gap` after the previous
    /// one exits, until `until`.
    pub fn add_stream(
        &mut self,
        first: Time,
        prefix: &str,
        weight: Weight,
        spec: BehaviorSpec,
        gap: Duration,
        until: Time,
    ) {
        let sidx = self.streams.len();
        let sym = self.trace.intern(prefix);
        self.streams.push(StreamState {
            sym,
            weight,
            spec: spec.clone(),
            gap,
            until,
            spawned: 1,
        });
        let label = TaskLabel { sym, replica: 1 };
        self.schedule_arrival_inner(first, label, weight, spec, None, Some(sidx));
    }

    fn post(&mut self, at: Time, kind: EvKind) {
        self.seq += 1;
        self.events.push(at.as_nanos(), self.seq, kind);
    }

    fn gms_advance(&mut self) {
        if let Some(g) = &mut self.gms {
            g.advance(self.now.since(self.gms_last));
        }
        self.gms_last = self.now;
    }

    /// Runs to the configured duration and produces the report.
    pub fn run(mut self) -> SimReport {
        let dur_ns = self.cfg.duration.as_nanos();
        let mut batch: Vec<EvKind> = Vec::new();
        while let Some((at, _seq, kind)) = self.events.pop() {
            if at > dur_ns {
                break;
            }
            debug_assert!(at >= self.now.as_nanos(), "time went backwards");
            self.now = Time(at);
            self.events_processed += 1;
            self.gms_advance();
            match kind {
                EvKind::Arrive(_) | EvKind::Wake(_) => {
                    // Drain the maximal run of same-tick arrival/wake
                    // events and apply it as one batch. Kills, timers
                    // and samples break the run: they are handled
                    // per-item, in event order, by the outer loop.
                    batch.clear();
                    batch.push(kind);
                    while let Some((t2, _, k2)) = self.events.peek() {
                        if t2 != at || !matches!(k2, EvKind::Arrive(_) | EvKind::Wake(_)) {
                            break;
                        }
                        // invariant: peek above returned Some at the
                        // same tick, and nothing popped in between.
                        let (_, _, k2) = self.events.pop().expect("peeked");
                        self.events_processed += 1;
                        batch.push(k2);
                    }
                    if batch.len() == 1 {
                        match batch[0].clone() {
                            EvKind::Arrive(idx) => self.on_arrive(idx),
                            EvKind::Wake(id) => self.on_wake(id),
                            _ => unreachable!(),
                        }
                    } else {
                        self.on_tick_batch(&batch);
                    }
                }
                EvKind::Kill(idx) => self.on_kill(idx),
                EvKind::CpuTimer { cpu, token } => self.on_cpu_timer(cpu, token),
                EvKind::Sample => self.on_sample(),
                EvKind::Fault(idx) => self.on_fault(idx),
            }
            if self.trace_buf.len() >= TRACE_FLUSH_EVENTS {
                self.rec.emit_many(std::mem::take(&mut self.trace_buf));
            }
        }
        // Wind down at the end-of-run instant.
        self.now = Time(self.cfg.duration.as_nanos());
        self.gms_advance();
        for i in 0..self.cpus.len() {
            if self.cpus[i].current.is_some() {
                self.stop_running(i, SwitchReason::Preempted);
            }
        }
        self.final_sample();
        self.rec.emit_many(std::mem::take(&mut self.trace_buf));

        let trace = std::mem::take(&mut self.trace);
        let mut report = trace.into_report(
            self.sched.name(),
            self.cfg.cpus,
            self.cfg.duration,
            self.sched.stats(),
            self.ctx_switches,
            self.events_processed,
        );
        if let Some(g) = &self.gms {
            for t in &mut report.tasks {
                let ideal = g.service(t.id);
                let err = if ideal >= t.service {
                    ideal - t.service
                } else {
                    t.service - ideal
                };
                t.gms_error = Some(err);
            }
        }
        report.health = RunHealth {
            rejected: self
                .admission
                .as_ref()
                .map_or(0, AdmissionControl::rejected),
            faults_injected: self.faults_injected,
            faults_recovered: self.faults_recovered,
            invariant_violations: self.invariant_violations,
        };
        report
    }

    // ---- event handlers -------------------------------------------------

    /// Creates the task for arrival `idx` (registering it with the
    /// trace) without resolving its first phase.
    fn spawn_arrival(&mut self, idx: usize) -> TaskId {
        let (label, weight, stream, tenant, behavior) = {
            let a = &self.arrivals[idx];
            (a.label, a.weight, a.stream, a.tenant, a.spec.build(a.seed))
        };
        let iteration_cost = behavior.iteration_cost();
        let id = self.tasks.push(weight, tenant, stream, behavior, self.now);
        self.arrivals[idx].spawned = Some(id);
        self.tenants_present |= tenant.is_some();
        self.trace
            .register_label(id, label, weight.get(), tenant, iteration_cost, self.now);
        if self.rec.on() {
            let name = self.trace.render(label);
            self.rec.register_task(id, &name, weight.get(), tenant);
        }
        id
    }

    /// Materialises arrival `idx` and runs it through admission
    /// control. A rejected arrival still gets a task id, a report entry
    /// and a `TaskRejected` trace event (so replica numbering, trace
    /// validation and stream continuations all stay intact), but it
    /// never touches the scheduler.
    fn admit_arrival(&mut self, idx: usize) -> Option<TaskId> {
        let id = self.spawn_arrival(idx);
        let Some(ctrl) = &mut self.admission else {
            return Some(id);
        };
        let i = TaskArena::idx(id);
        let runnable = self.sched.nr_runnable() as u64;
        match ctrl.admit(self.tasks.tenant[i], self.now, runnable) {
            Ok(()) => {
                self.tasks.admitted[i] = true;
                Some(id)
            }
            Err(_) => {
                self.trace.mark_rejected(id);
                if self.rec.on() {
                    self.trace_buf.push(TraceEvent::TaskRejected {
                        t: self.now.as_nanos(),
                        task: id,
                    });
                }
                self.finish_task(id);
                None
            }
        }
    }

    fn on_arrive(&mut self, idx: usize) {
        if let Some(id) = self.admit_arrival(idx) {
            self.continue_task(id);
        }
    }

    /// Applies a same-tick run of arrival/wake events as one batch:
    /// each event resolves its task's next phase in event order, with
    /// the scheduler insertions deferred and grouped into maximal
    /// consecutive same-operation runs ([`Scheduler::arrive_batch`] /
    /// [`Scheduler::wake_batch`]). A detach (a task exiting mid-batch)
    /// flushes the pending run first, so the scheduler observes every
    /// mutation in exact event order — only *consecutive identical*
    /// operations are fused. One dispatch sweep runs after the batch,
    /// then wake preemption is checked per made-runnable task in event
    /// order.
    fn on_tick_batch(&mut self, batch: &[EvKind]) {
        let mut made_runnable: Vec<TaskId> = Vec::with_capacity(batch.len());
        let mut attaches: Vec<(TaskId, Weight, Option<TenantId>)> = Vec::new();
        let mut wakes: Vec<TaskId> = Vec::new();
        for ev in batch {
            match *ev {
                EvKind::Arrive(idx) => {
                    if let Some(id) = self.admit_arrival(idx) {
                        self.resolve_batched(id, &mut attaches, &mut wakes, &mut made_runnable);
                    }
                }
                EvKind::Wake(id) => {
                    if self.tasks.state[TaskArena::idx(id)] != TState::Sleeping {
                        continue; // killed or already woken
                    }
                    if self.delay_dropped_wake(id) {
                        continue;
                    }
                    self.resolve_batched(id, &mut attaches, &mut wakes, &mut made_runnable);
                }
                _ => unreachable!("only arrivals and wakes batch"),
            }
        }
        self.flush_attaches(&mut attaches);
        self.flush_wakes(&mut wakes);
        self.dispatch_all();
        for id in made_runnable {
            self.preempt_check(id);
        }
    }

    fn flush_attaches(&mut self, buf: &mut Vec<(TaskId, Weight, Option<TenantId>)>) {
        if buf.is_empty() {
            return;
        }
        self.sched.arrive_batch(buf, self.now);
        buf.clear();
    }

    fn flush_wakes(&mut self, buf: &mut Vec<TaskId>) {
        if buf.is_empty() {
            return;
        }
        self.sched.wake_batch(buf, self.now);
        buf.clear();
    }

    /// The batched counterpart of [`Simulator::continue_task`]: resolves
    /// the task's next phase and, if it becomes runnable, queues the
    /// scheduler insertion in the pending same-operation run (flushing
    /// the *other* operation's run first, so at most one is ever
    /// pending and the scheduler-call order is preserved).
    fn resolve_batched(
        &mut self,
        id: TaskId,
        attaches: &mut Vec<(TaskId, Weight, Option<TenantId>)>,
        wakes: &mut Vec<TaskId>,
        made_runnable: &mut Vec<TaskId>,
    ) {
        let i = TaskArena::idx(id);
        match self.resolve_next_phase(id) {
            Resolved::Compute(d) => {
                self.tasks.remaining[i] = d;
                self.tasks.last_wake[i] = self.now;
                self.tasks.awaiting_response[i] = true;
                if self.tasks.attached[i] {
                    self.flush_attaches(attaches);
                    wakes.push(id);
                    if let Some(g) = &mut self.gms {
                        g.set_runnable(id, true);
                    }
                } else {
                    self.flush_wakes(wakes);
                    let weight = self.tasks.weight[i];
                    let tenant = self.tasks.tenant[i];
                    attaches.push((id, weight, tenant));
                    self.tasks.attached[i] = true;
                    if let Some(g) = &mut self.gms {
                        g.add(id, weight, true);
                    }
                }
                self.tasks.state[i] = TState::Ready;
                if self.rec.on() {
                    self.trace_buf.push(TraceEvent::Wake {
                        t: self.now.as_nanos(),
                        task: id,
                    });
                }
                made_runnable.push(id);
            }
            Resolved::Sleep(until) => {
                self.tasks.state[i] = TState::Sleeping;
                self.post(until, EvKind::Wake(id));
            }
            Resolved::Exit => {
                if self.tasks.attached[i] {
                    // The detach must hit the scheduler at its exact
                    // position in the event order.
                    self.flush_attaches(attaches);
                    self.flush_wakes(wakes);
                    self.sched.detach(id, self.now);
                }
                self.finish_task(id);
            }
        }
    }

    fn on_kill(&mut self, idx: usize) {
        let Some(id) = self.arrivals[idx].spawned else {
            return;
        };
        let i = TaskArena::idx(id);
        match self.tasks.state[i] {
            TState::Exited => {}
            TState::Running(cpu) => {
                self.stop_running(cpu, SwitchReason::Exited);
                self.finish_task(id);
                self.dispatch(cpu);
            }
            TState::Ready => {
                self.sched.detach(id, self.now);
                self.finish_task(id);
            }
            TState::Sleeping => {
                if self.tasks.attached[i] {
                    self.sched.detach(id, self.now);
                }
                self.finish_task(id);
            }
        }
    }

    fn on_wake(&mut self, id: TaskId) {
        if self.tasks.state[TaskArena::idx(id)] != TState::Sleeping {
            return; // killed or already woken
        }
        if self.delay_dropped_wake(id) {
            return;
        }
        self.continue_task(id);
    }

    /// If an injected [`FaultKind::WakeDrop`] is pending for the task,
    /// consumes it and re-posts the wake that much later, modelling a
    /// lost-then-retried wakeup. Returns true if the wake was deferred.
    fn delay_dropped_wake(&mut self, id: TaskId) -> bool {
        let i = TaskArena::idx(id);
        let delay = self.tasks.wake_delay[i];
        if delay.is_zero() {
            return false;
        }
        self.tasks.wake_delay[i] = Duration::ZERO;
        self.post(self.now + delay, EvKind::Wake(id));
        true
    }

    /// Applies injected fault `fidx` and immediately runs its recovery
    /// action; scheduler invariants are re-checked after any forced
    /// reap, with failures counted rather than propagated.
    fn on_fault(&mut self, fidx: usize) {
        self.faults_injected += 1;
        match self.fault_kinds[fidx] {
            FaultKind::Panic { task } => self.fault_panic(task),
            FaultKind::Stall { cpu, dur } => self.fault_slow(cpu, dur, true),
            FaultKind::Jitter { cpu, dur } => self.fault_slow(cpu, dur, false),
            FaultKind::WakeDrop { task, dur } => self.fault_wake_drop(task, dur),
        }
        self.faults_recovered += 1;
    }

    /// Resolves a fault's arrival-order task index to a spawned,
    /// still-live task id (faults targeting unspawned or exited tasks
    /// are no-ops — trivially recovered).
    fn fault_target(&self, task: u64) -> Option<TaskId> {
        let id = self.arrivals.get(task as usize)?.spawned?;
        (self.tasks.state[TaskArena::idx(id)] != TState::Exited).then_some(id)
    }

    /// An injected task panic: the task is forcibly reaped through
    /// [`Scheduler::reap`] (weight released, §2.1 readjustment applied)
    /// and marked in the trace, exactly as the real-time executor's
    /// `catch_unwind` cleanup does for a genuinely panicking body.
    fn fault_panic(&mut self, task: u64) {
        let Some(id) = self.fault_target(task) else {
            return;
        };
        let i = TaskArena::idx(id);
        match self.tasks.state[i] {
            TState::Exited => unreachable!("fault_target filters exited tasks"),
            TState::Running(cpu) => {
                self.stop_running(cpu, SwitchReason::Exited);
                self.reap_task(id);
                self.dispatch(cpu);
            }
            TState::Ready => {
                self.sched.reap(id, self.now);
                self.reap_task(id);
            }
            TState::Sleeping => {
                if self.tasks.attached[i] {
                    self.sched.reap(id, self.now);
                }
                self.reap_task(id);
            }
        }
        // A reap is exactly the surgery that could corrupt a run queue:
        // re-check the scheduler's structural invariants and count
        // (rather than abort on) any violation.
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.sched.check_invariants();
        }))
        .is_ok();
        if !ok {
            self.invariant_violations += 1;
        }
    }

    /// Marks a task killed by fault recovery and routes it through the
    /// normal exit path (the caller has already stopped it and released
    /// its scheduler weight).
    fn reap_task(&mut self, id: TaskId) {
        self.trace.mark_reaped(id);
        if self.rec.on() {
            self.trace_buf.push(TraceEvent::TaskReaped {
                t: self.now.as_nanos(),
                task: id,
            });
        }
        self.finish_task(id);
    }

    /// A stalled or jittered CPU: the running task holds the processor
    /// `dur` longer than it should. A stall also burns `dur` of extra
    /// demand (the task made no progress while stalled); jitter only
    /// delays the quantum timer, so expiry is observed late.
    fn fault_slow(&mut self, cpu: u32, dur: Duration, stall: bool) {
        let c = cpu as usize;
        if c >= self.cpus.len() {
            return;
        }
        let Some(id) = self.cpus[c].current else {
            return; // idle CPU: nothing to disturb
        };
        self.charge_compute(c);
        let i = TaskArena::idx(id);
        if stall {
            self.tasks.remaining[i] += dur;
        }
        let cpu_s = &mut self.cpus[c];
        if stall {
            cpu_s.quantum_deadline += dur;
        }
        // Invalidate the pending timer and reschedule. An earlier
        // jitter fault may have pushed the pending timer past the
        // quantum deadline; a second fault then sees a deadline in the
        // past, so clamp to now before rescheduling.
        cpu_s.token += 1;
        let fire = (self.now + self.tasks.remaining[i])
            .min(cpu_s.quantum_deadline)
            .max(self.now);
        let fire = if stall { fire } else { fire + dur };
        let token = cpu_s.token;
        self.post(fire, EvKind::CpuTimer { cpu: c, token });
    }

    /// A dropped wakeup: the task's next wake event will be re-posted
    /// `dur` late (see [`Simulator::delay_dropped_wake`]).
    fn fault_wake_drop(&mut self, task: u64, dur: Duration) {
        let Some(id) = self.fault_target(task) else {
            return;
        };
        let i = TaskArena::idx(id);
        if self.tasks.state[i] == TState::Sleeping {
            self.tasks.wake_delay[i] += dur;
        }
    }

    fn on_cpu_timer(&mut self, cpu_idx: usize, token: u64) {
        if self.cpus[cpu_idx].token != token {
            return; // stale timer
        }
        // invariant: the token matched, and tokens are bumped on
        // every dispatch/idle transition — the CPU still runs the task
        // this timer was armed for.
        let id = self.cpus[cpu_idx].current.expect("timer fired on idle CPU");
        self.charge_compute(cpu_idx);
        let i = TaskArena::idx(id);
        if !self.tasks.remaining[i].is_zero() {
            // Quantum expired mid-phase.
            self.stop_running(cpu_idx, SwitchReason::Preempted);
            self.tasks.state[i] = TState::Ready;
            self.dispatch(cpu_idx);
            return;
        }
        // The compute phase completed.
        let response = if self.tasks.awaiting_response[i] {
            self.tasks.awaiting_response[i] = false;
            Some(self.now.since(self.tasks.last_wake[i]))
        } else {
            None
        };
        self.trace.complete(id, response);
        match self.resolve_next_phase(id) {
            Resolved::Compute(d) => {
                self.tasks.remaining[i] = d;
                let cpu = &mut self.cpus[cpu_idx];
                if self.now < cpu.quantum_deadline {
                    // Keep running within the same quantum.
                    cpu.token += 1;
                    let fire = (self.now + d).min(cpu.quantum_deadline);
                    let token = cpu.token;
                    self.post(
                        fire,
                        EvKind::CpuTimer {
                            cpu: cpu_idx,
                            token,
                        },
                    );
                } else {
                    self.stop_running(cpu_idx, SwitchReason::Preempted);
                    self.tasks.state[i] = TState::Ready;
                    self.dispatch(cpu_idx);
                }
            }
            Resolved::Sleep(until) => {
                self.stop_running(cpu_idx, SwitchReason::Blocked);
                self.tasks.state[i] = TState::Sleeping;
                if let Some(g) = &mut self.gms {
                    g.set_runnable(id, false);
                }
                self.post(until, EvKind::Wake(id));
                self.dispatch(cpu_idx);
            }
            Resolved::Exit => {
                self.stop_running(cpu_idx, SwitchReason::Exited);
                self.finish_task(id);
                self.dispatch(cpu_idx);
            }
        }
    }

    fn on_sample(&mut self) {
        if !self.cfg.lean {
            let in_flight: Vec<(TaskId, Duration)> = self
                .cpus
                .iter()
                .filter_map(|c| c.current.map(|id| (id, self.now.since(c.dispatched_at))))
                .collect();
            for i in 0..self.tasks.len() {
                if self.tasks.state[i] == TState::Exited {
                    continue;
                }
                let id = TaskId(i as u64 + 1);
                let extra = in_flight
                    .iter()
                    .find(|(other, _)| *other == id)
                    .map(|(_, d)| *d)
                    .unwrap_or(Duration::ZERO);
                self.trace.sample(id, self.now, extra);
            }
        }
        self.record_counters();
        let next = self.now + self.cfg.sample_every;
        if next.as_nanos() <= self.cfg.duration.as_nanos() {
            self.post(next, EvKind::Sample);
        }
    }

    fn final_sample(&mut self) {
        if !self.cfg.lean {
            for i in 0..self.tasks.len() {
                self.trace
                    .sample(TaskId(i as u64 + 1), self.now, Duration::ZERO);
            }
        }
        self.record_counters();
    }

    // ---- task lifecycle -------------------------------------------------

    /// Pulls the task's next phase(s) after an arrival or wakeup and
    /// moves it into the right state.
    fn continue_task(&mut self, id: TaskId) {
        let i = TaskArena::idx(id);
        match self.resolve_next_phase(id) {
            Resolved::Compute(d) => {
                self.tasks.remaining[i] = d;
                self.tasks.last_wake[i] = self.now;
                self.tasks.awaiting_response[i] = true;
                self.make_runnable(id);
            }
            Resolved::Sleep(until) => {
                self.tasks.state[i] = TState::Sleeping;
                self.post(until, EvKind::Wake(id));
            }
            Resolved::Exit => {
                if self.tasks.attached[i] {
                    self.sched.detach(id, self.now);
                }
                self.finish_task(id);
            }
        }
    }

    /// Resolves behaviour output to a definite next step, skipping
    /// zero-cost computes and past deadlines.
    fn resolve_next_phase(&mut self, id: TaskId) -> Resolved {
        let i = TaskArena::idx(id);
        for _ in 0..10_000 {
            let now = self.now;
            match self.tasks.behavior[i].next(now) {
                Phase::Compute(d) if !d.is_zero() => return Resolved::Compute(d),
                Phase::Compute(_) => {
                    self.trace.complete(id, None);
                }
                Phase::Block(d) => return Resolved::Sleep(now + d),
                Phase::BlockUntil(t) => {
                    if t > now {
                        return Resolved::Sleep(t);
                    }
                }
                Phase::Exit => return Resolved::Exit,
            }
        }
        panic!("behavior of task {id} made no progress over 10000 phases");
    }

    fn make_runnable(&mut self, id: TaskId) {
        let i = TaskArena::idx(id);
        let weight = self.tasks.weight[i];
        let tenant = self.tasks.tenant[i];
        if self.tasks.attached[i] {
            self.sched.wake(id, self.now);
            if let Some(g) = &mut self.gms {
                g.set_runnable(id, true);
            }
        } else {
            self.sched.attach_tenant(id, weight, tenant, self.now);
            self.tasks.attached[i] = true;
            if let Some(g) = &mut self.gms {
                g.add(id, weight, true);
            }
        }
        self.tasks.state[i] = TState::Ready;
        if self.rec.on() {
            self.trace_buf.push(TraceEvent::Wake {
                t: self.now.as_nanos(),
                task: id,
            });
        }
        self.dispatch_all();
        self.preempt_check(id);
    }

    fn finish_task(&mut self, id: TaskId) {
        let i = TaskArena::idx(id);
        self.tasks.state[i] = TState::Exited;
        let stream = self.tasks.stream[i];
        self.trace.exited(id, self.now);
        if self.tasks.admitted[i] {
            self.tasks.admitted[i] = false;
            let tenant = self.tasks.tenant[i];
            if let Some(ctrl) = &mut self.admission {
                ctrl.release(tenant);
            }
        }
        if let Some(g) = &mut self.gms {
            if self.tasks.attached[i] {
                g.remove(id);
            }
        }
        if let Some(sidx) = stream {
            let next_at = self.now + self.streams[sidx].gap;
            let s = &mut self.streams[sidx];
            if next_at < s.until {
                s.spawned += 1;
                let label = TaskLabel {
                    sym: s.sym,
                    replica: s.spawned as u32,
                };
                let (weight, spec) = (s.weight, s.spec.clone());
                self.schedule_arrival_inner(next_at, label, weight, spec, None, Some(sidx));
            }
        }
    }

    // ---- CPU handling ---------------------------------------------------

    fn dispatch_all(&mut self) {
        for i in 0..self.cpus.len() {
            self.dispatch(i);
        }
    }

    fn dispatch(&mut self, cpu_idx: usize) {
        if self.cpus[cpu_idx].current.is_some() {
            return;
        }
        let Some(next) = self.sched.pick_next(CpuId(cpu_idx as u32), self.now) else {
            return;
        };
        let switching = self.cpus[cpu_idx].last_task != Some(next);
        if switching {
            self.ctx_switches += 1;
        }
        if self.rec.on() {
            let t = self.now.as_nanos();
            if switching {
                self.trace_buf.push(TraceEvent::CtxSwitch {
                    t,
                    cpu: cpu_idx as u32,
                    from: self.cpus[cpu_idx].last_task,
                    to: next,
                });
            }
            self.trace_buf.push(TraceEvent::SliceBegin {
                t,
                cpu: cpu_idx as u32,
                task: next,
            });
        }
        let cs = if switching {
            self.cfg.ctx_switch
        } else {
            Duration::ZERO
        };
        let slice = self.sched.time_slice(next);
        let i = TaskArena::idx(next);
        debug_assert_eq!(
            self.tasks.state[i],
            TState::Ready,
            "dispatching non-ready task"
        );
        self.tasks.state[i] = TState::Running(cpu_idx);
        let remaining = self.tasks.remaining[i];
        let cpu = &mut self.cpus[cpu_idx];
        cpu.current = Some(next);
        cpu.dispatched_at = self.now;
        cpu.last_charge = self.now + cs;
        cpu.quantum_deadline = cpu.last_charge + slice;
        cpu.token += 1;
        let fire = (cpu.last_charge + remaining).min(cpu.quantum_deadline);
        let token = cpu.token;
        self.post(
            fire,
            EvKind::CpuTimer {
                cpu: cpu_idx,
                token,
            },
        );
    }

    /// Charges compute progress since the last charge point.
    fn charge_compute(&mut self, cpu_idx: usize) {
        let cpu = &mut self.cpus[cpu_idx];
        // invariant: every caller just checked or installed
        // `current`; idle CPUs are never charged.
        let id = cpu.current.expect("charging idle CPU");
        let elapsed = self.now.since(cpu.last_charge);
        cpu.last_charge = self.now.max(cpu.last_charge);
        let i = TaskArena::idx(id);
        self.tasks.remaining[i] = self.tasks.remaining[i].saturating_sub(elapsed);
    }

    /// Removes the current task from a CPU, reporting actual usage to
    /// the scheduler. The caller updates the engine-side task state.
    fn stop_running(&mut self, cpu_idx: usize, reason: SwitchReason) {
        self.charge_compute(cpu_idx);
        let cpu = &mut self.cpus[cpu_idx];
        // invariant: callers stop a CPU only after dispatching to it
        // (preempt, block, exit all take the running task as input).
        let id = cpu.current.take().expect("stopping idle CPU");
        let q = self.now.since(cpu.dispatched_at);
        cpu.last_task = Some(id);
        cpu.token += 1; // invalidate any pending timer
        self.sched.put_prev(id, q, reason, self.now);
        self.trace.add_service(id, q);
        if self.rec.on() {
            let t = self.now.as_nanos();
            self.trace_buf.push(TraceEvent::SliceEnd {
                t,
                cpu: cpu_idx as u32,
                task: id,
                reason,
            });
            if self.tenants_present {
                if let Some(tenant) = self.tasks.tenant[TaskArena::idx(id)] {
                    self.rec.add_tenant_service(t, tenant, q.as_nanos());
                }
            }
        }
    }

    fn preempt_check(&mut self, woken: TaskId) {
        if self.tasks.state[TaskArena::idx(woken)] != TState::Ready {
            return;
        }
        let candidates: Vec<(usize, TaskId, Duration)> = self
            .cpus
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.current
                    .map(|running| (i, running, self.now.since(c.dispatched_at)))
            })
            .collect();
        let Some((i, running)) =
            select_preemption_victim(self.sched.as_ref(), woken, &candidates, self.now)
        else {
            return;
        };
        if self.rec.on() {
            self.trace_buf.push(TraceEvent::PreemptEvict {
                t: self.now.as_nanos(),
                cpu: i as u32,
                victim: running,
                by: woken,
            });
        }
        self.stop_running(i, SwitchReason::Preempted);
        self.tasks.state[TaskArena::idx(running)] = TState::Ready;
        self.dispatch(i);
    }

    /// Emits counter samples and readjustment-epoch deltas (recording
    /// runs only; called from the periodic sample event).
    fn record_counters(&mut self) {
        if !self.rec.on() {
            return;
        }
        let t = self.now.as_nanos();
        if let Some(v) = self.sched.virtual_time() {
            self.trace_buf.push(TraceEvent::Counter {
                t,
                track: CounterTrack::VirtualTime,
                value: v.to_f64(),
            });
        }
        self.trace_buf.push(TraceEvent::Counter {
            t,
            track: CounterTrack::Runnable,
            value: self.sched.nr_runnable() as f64,
        });
        let mut max_surplus: Option<f64> = None;
        let mut min_phi: Option<f64> = None;
        for cpu in &self.cpus {
            let Some(id) = cpu.current else { continue };
            let ran = self.now.since(cpu.dispatched_at);
            if let Some(s) = self.sched.charged_surplus(id, ran, self.now) {
                let s = s.to_f64();
                max_surplus = Some(max_surplus.map_or(s, |m| m.max(s)));
            }
            if let Some(phi) = self.sched.adjusted_weight_of(id) {
                let phi = phi.to_f64();
                min_phi = Some(min_phi.map_or(phi, |m| m.min(phi)));
            }
        }
        if let Some(value) = max_surplus {
            self.trace_buf.push(TraceEvent::Counter {
                t,
                track: CounterTrack::MaxRunSurplus,
                value,
            });
        }
        if let Some(value) = min_phi {
            self.trace_buf.push(TraceEvent::Counter {
                t,
                track: CounterTrack::MinRunPhi,
                value,
            });
        }
        let stats = self.sched.stats();
        let (calls, clamped) = (stats.readjust_calls, stats.weights_clamped);
        if calls > self.last_readjust.0 {
            self.trace_buf.push(TraceEvent::Readjust {
                t,
                calls: calls - self.last_readjust.0,
                clamped: clamped.saturating_sub(self.last_readjust.1),
            });
        }
        self.last_readjust = (calls, clamped);
    }
}

enum Resolved {
    Compute(Duration),
    Sleep(Time),
    Exit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::policy::PolicySpec;
    use sfs_core::task::weight;

    fn quick_cfg(cpus: u32, secs: u64) -> SimConfig {
        SimConfig {
            cpus,
            duration: Duration::from_secs(secs),
            sample_every: Duration::from_millis(200),
            ..SimConfig::default()
        }
    }

    fn sfs(cpus: u32) -> Box<dyn Scheduler> {
        PolicySpec::sfs()
            .with_quantum(Duration::from_millis(20))
            .build(cpus)
    }

    #[test]
    fn single_cpu_bound_task_gets_everything() {
        let mut sim = Simulator::new(quick_cfg(1, 2), sfs(1));
        sim.schedule_arrival(Time::ZERO, "T1", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let t = rep.task("T1").unwrap();
        // Minus context switches (one initial dispatch), service ≈ 2 s.
        assert!(t.service >= Duration::from_millis(1990), "{:?}", t.service);
    }

    #[test]
    fn proportional_shares_on_two_cpus() {
        let mut sim = Simulator::new(quick_cfg(2, 10), sfs(2));
        sim.schedule_arrival(Time::ZERO, "heavy", weight(2), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "light1", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "light2", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let h = rep.task("heavy").unwrap().service.as_secs_f64();
        let l1 = rep.task("light1").unwrap().service.as_secs_f64();
        let l2 = rep.task("light2").unwrap().service.as_secs_f64();
        assert!((h / l1 - 2.0).abs() < 0.05, "h/l1 = {}", h / l1);
        assert!((h / l2 - 2.0).abs() < 0.05, "h/l2 = {}", h / l2);
        // Work conservation: total ≈ 2 CPUs × 10 s.
        assert!(h + l1 + l2 > 19.8, "total {}", h + l1 + l2);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(quick_cfg(2, 5), sfs(2));
            sim.schedule_arrival(Time::ZERO, "a", weight(3), BehaviorSpec::Inf);
            sim.schedule_arrival(
                Time::ZERO,
                "b",
                weight(1),
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(40),
                    io: Duration::from_millis(2),
                },
            );
            sim.schedule_arrival(
                Time::from_secs(1),
                "c",
                weight(1),
                BehaviorSpec::Interact {
                    think: Duration::from_millis(50),
                    burst: Duration::from_millis(5),
                },
            );
            let rep = sim.run();
            rep.tasks
                .iter()
                .map(|t| (t.name.clone(), t.service, t.completions))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mpeg_alone_hits_target_frame_rate() {
        let mut sim = Simulator::new(quick_cfg(1, 10), sfs(1));
        sim.schedule_arrival(
            Time::ZERO,
            "mpeg",
            weight(1),
            BehaviorSpec::Mpeg {
                fps: 30,
                frame_cost: Duration::from_millis(10),
            },
        );
        let rep = sim.run();
        let t = rep.task("mpeg").unwrap();
        let rate = t.completion_rate(Time::from_secs(10));
        assert!((rate - 30.0).abs() < 1.0, "frame rate {rate}");
    }

    #[test]
    fn mpeg_degrades_when_overloaded() {
        // Frame cost 50 ms at 30 fps needs 1.5 CPUs: on one CPU the
        // decoder can do at most 20 fps.
        let mut sim = Simulator::new(quick_cfg(1, 10), sfs(1));
        sim.schedule_arrival(
            Time::ZERO,
            "mpeg",
            weight(1),
            BehaviorSpec::Mpeg {
                fps: 30,
                frame_cost: Duration::from_millis(50),
            },
        );
        let rep = sim.run();
        let rate = rep
            .task("mpeg")
            .unwrap()
            .completion_rate(Time::from_secs(10));
        assert!((rate - 20.0).abs() < 1.0, "frame rate {rate}");
    }

    #[test]
    fn wake_preemption_selects_worst_victim_not_first() {
        // Regression: preempt_check used to evict the *first* CPU whose
        // running task lost to the woken one. With a near-tie on CPU 0
        // and a far-worse task on CPU 2, the victim must be CPU 2.
        let mut sched = PolicySpec::sfs()
            .with_quantum(Duration::from_millis(1))
            .build(3);
        let now = Time::ZERO;
        for i in 1..=4u64 {
            sched.attach(TaskId(i), weight(1), now);
        }
        // Deterministic id tie-break: T1→cpu0, T2→cpu1, T3→cpu2;
        // T4 stays ready with zero surplus.
        for c in 0..3u32 {
            assert_eq!(
                sched.pick_next(sfs_core::task::CpuId(c), now),
                Some(TaskId(c as u64 + 1))
            );
        }
        let candidates = [
            (0usize, TaskId(1), Duration::from_micros(200)),
            (1usize, TaskId(2), Duration::from_micros(150)),
            (2usize, TaskId(3), Duration::from_millis(50)),
        ];
        // Every CPU is preemptable (all charged surpluses exceed the
        // woken task's zero surplus plus the margin)...
        for &(_, running, ran) in &candidates {
            assert!(sched.wake_preempts(TaskId(4), running, ran, now));
        }
        // ...but the selected victim is the largest-surplus one.
        let victim = select_preemption_victim(sched.as_ref(), TaskId(4), &candidates, now);
        assert_eq!(victim, Some((2, TaskId(3))));
        // With no eligible CPU there is no victim.
        let none = select_preemption_victim(sched.as_ref(), TaskId(4), &[], now);
        assert_eq!(none, None);
    }

    #[test]
    fn interactive_response_reasonable_under_sfs() {
        let mut sim = Simulator::new(quick_cfg(1, 20), sfs(1));
        sim.schedule_arrival(
            Time::ZERO,
            "interact",
            weight(1),
            BehaviorSpec::Interact {
                think: Duration::from_millis(100),
                burst: Duration::from_millis(5),
            },
        );
        sim.schedule_arrival(Time::ZERO, "hog", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let t = rep.task("interact").unwrap();
        let r = t.responses.as_ref().expect("no responses recorded");
        assert!(r.count() > 50, "too few requests: {}", r.count());
        // Wake preemption keeps responses near the burst length.
        assert!(r.mean() < 30.0, "mean response {} ms too high", r.mean());
    }

    #[test]
    fn kill_stops_a_task() {
        let mut sim = Simulator::new(quick_cfg(2, 10), sfs(2));
        let _a = sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        let b = sim.schedule_arrival(Time::ZERO, "b", weight(1), BehaviorSpec::Inf);
        sim.schedule_kill(Time::from_secs(3), b);
        let rep = sim.run();
        let b = rep.task("b").unwrap();
        assert!(b.exited.is_some());
        assert!(
            b.service <= Duration::from_millis(3050),
            "b kept running: {:?}",
            b.service
        );
    }

    #[test]
    fn stream_spawns_jobs_back_to_back() {
        let mut sim = Simulator::new(quick_cfg(2, 5), sfs(2));
        sim.schedule_arrival(Time::ZERO, "bg", weight(1), BehaviorSpec::Inf);
        sim.add_stream(
            Time::ZERO,
            "short",
            weight(5),
            BehaviorSpec::Finite(Duration::from_millis(300)),
            Duration::ZERO,
            Time::from_secs(5),
        );
        let rep = sim.run();
        let shorts: Vec<_> = rep
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("short#"))
            .collect();
        // 2 CPUs, 1 hog: a short job effectively owns a CPU, so ~300 ms
        // per job ⇒ ≈ 16 jobs in 5 s.
        assert!(shorts.len() >= 10, "only {} short jobs ran", shorts.len());
        // All but possibly the last exited after receiving 300 ms.
        for s in &shorts[..shorts.len() - 1] {
            assert!(s.exited.is_some(), "{} never finished", s.name);
            assert!(
                s.service >= Duration::from_millis(299),
                "{} got {:?}",
                s.name,
                s.service
            );
        }
    }

    #[test]
    fn gms_tracking_bounds_sfs_error() {
        let cfg = SimConfig {
            track_gms: true,
            ..quick_cfg(2, 10)
        };
        let mut sim = Simulator::new(cfg, sfs(2));
        sim.schedule_arrival(Time::ZERO, "a", weight(4), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(2), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "c", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "d", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        for t in &rep.tasks {
            let err = t.gms_error.expect("gms error missing");
            // Deviation from the fluid ideal stays within a few quanta.
            assert!(
                err < Duration::from_millis(100),
                "{}: GMS error {err}",
                t.name
            );
        }
    }

    #[test]
    fn timesharing_ignores_weights_in_sim() {
        let mut sim = Simulator::new(quick_cfg(2, 10), PolicySpec::time_sharing().build(2));
        sim.schedule_arrival(Time::ZERO, "w10", weight(10), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "w1a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "w1b", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let a = rep.task("w10").unwrap().service.as_secs_f64();
        let b = rep.task("w1a").unwrap().service.as_secs_f64();
        assert!((a / b - 1.0).abs() < 0.1, "time sharing skewed: {}", a / b);
    }

    #[test]
    fn context_switches_are_counted() {
        let mut sim = Simulator::new(quick_cfg(1, 2), sfs(1));
        sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        // 2 s / 20 ms quanta alternating between two tasks.
        assert!(rep.ctx_switches > 50, "{}", rep.ctx_switches);
    }

    #[test]
    fn series_are_monotone() {
        let mut sim = Simulator::new(quick_cfg(2, 5), sfs(2));
        sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(3), BehaviorSpec::Inf);
        let rep = sim.run();
        for t in &rep.tasks {
            let pts = t.series.points();
            assert!(pts.len() > 5, "{} has too few samples", t.name);
            for w in pts.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{} not monotone", t.name);
            }
        }
    }

    #[test]
    fn engine_counts_events() {
        let mut sim = Simulator::new(quick_cfg(1, 2), sfs(1));
        sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        // At least the arrivals, the samples, and one timer per quantum.
        assert!(rep.engine_events > 100, "{}", rep.engine_events);
    }

    #[test]
    fn lean_mode_matches_full_mode_service_totals() {
        let run = |lean: bool| {
            let cfg = SimConfig {
                lean,
                ..quick_cfg(2, 5)
            };
            let mut sim = Simulator::new(cfg, sfs(2));
            sim.schedule_arrival(Time::ZERO, "a", weight(3), BehaviorSpec::Inf);
            sim.schedule_arrival(
                Time::ZERO,
                "b",
                weight(1),
                BehaviorSpec::Finite(Duration::from_millis(500)),
            );
            sim.schedule_arrival(
                Time::from_millis(100),
                "c",
                weight(1),
                BehaviorSpec::Interact {
                    think: Duration::from_millis(50),
                    burst: Duration::from_millis(5),
                },
            );
            sim.run()
        };
        let full = run(false);
        let lean = run(true);
        // Lean mode changes what is *recorded*, never what happens.
        assert_eq!(lean.total_service(), full.total_service());
        assert_eq!(lean.ctx_switches, full.ctx_switches);
        assert_eq!(lean.engine_events, full.engine_events);
        let s = lean.summary.expect("lean summary");
        assert!(lean.tasks.is_empty());
        assert_eq!(s.tasks, full.tasks.len() as u64);
        let full_completions: u64 = full.tasks.iter().map(|t| t.completions).sum();
        assert_eq!(s.completions, full_completions);
        assert_eq!(
            s.exited,
            full.tasks.iter().filter(|t| t.exited.is_some()).count() as u64
        );
    }

    #[test]
    fn admission_cap_rejects_excess_tasks() {
        use sfs_core::admit::AdmissionPolicy;
        let mut sim = Simulator::new(quick_cfg(1, 2), sfs(1))
            .with_admission(AdmissionPolicy::none().with_max_live(2));
        for k in 0..5 {
            sim.schedule_arrival(Time::ZERO, &format!("t{k}"), weight(1), BehaviorSpec::Inf);
        }
        let rep = sim.run();
        assert_eq!(rep.health.rejected, 3);
        let rejected: Vec<_> = rep.tasks.iter().filter(|t| t.rejected).collect();
        assert_eq!(rejected.len(), 3);
        for t in &rejected {
            assert_eq!(t.service, Duration::ZERO, "{} ran after rejection", t.name);
            assert!(t.exited.is_some(), "{} still live", t.name);
        }
        // The two admitted tasks split the CPU.
        let admitted: Vec<_> = rep.tasks.iter().filter(|t| !t.rejected).collect();
        assert_eq!(admitted.len(), 2);
        for t in &admitted {
            assert!(
                t.service >= Duration::from_millis(900),
                "{} got {:?}",
                t.name,
                t.service
            );
        }
    }

    #[test]
    fn admission_releases_slots_on_exit() {
        use sfs_core::admit::AdmissionPolicy;
        // Cap 1: the finite job's exit must free the slot for the
        // later arrival.
        let mut sim = Simulator::new(quick_cfg(1, 2), sfs(1))
            .with_admission(AdmissionPolicy::none().with_max_live(1));
        sim.schedule_arrival(
            Time::ZERO,
            "first",
            weight(1),
            BehaviorSpec::Finite(Duration::from_millis(100)),
        );
        sim.schedule_arrival(Time::from_secs(1), "second", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        assert_eq!(rep.health.rejected, 0);
        assert!(!rep.task("second").unwrap().rejected);
        assert!(rep.task("second").unwrap().service > Duration::from_millis(900));
    }

    #[test]
    fn injected_panic_reaps_and_survivors_split_the_cpu() {
        use sfs_core::fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new().with(Time::from_millis(500), FaultKind::Panic { task: 0 });
        let mut sim = Simulator::new(quick_cfg(1, 4), sfs(1)).with_faults(&plan);
        sim.schedule_arrival(Time::ZERO, "victim", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        assert_eq!(rep.health.faults_injected, 1);
        assert_eq!(rep.health.faults_recovered, 1);
        assert_eq!(rep.health.invariant_violations, 0);
        let v = rep.task("victim").unwrap();
        assert!(v.reaped, "victim not marked reaped");
        assert!(v.exited.is_some());
        assert!(v.service <= Duration::from_millis(520), "{:?}", v.service);
        // Survivors split the remaining 3.5 s 1:1 — the reaped weight
        // was released, not leaked.
        let a = rep.task("a").unwrap().service.as_secs_f64();
        let b = rep.task("b").unwrap().service.as_secs_f64();
        assert!((a / b - 1.0).abs() < 0.05, "a/b = {}", a / b);
        assert!(a + b > 3.2, "survivors starved: {}", a + b);
    }

    #[test]
    fn stall_jitter_and_wakedrop_recover_deterministically() {
        use sfs_core::fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new()
            .with(
                Time::from_millis(200),
                FaultKind::Stall {
                    cpu: 0,
                    dur: Duration::from_millis(30),
                },
            )
            .with(
                Time::from_millis(900),
                FaultKind::Jitter {
                    cpu: 0,
                    dur: Duration::from_millis(5),
                },
            )
            .with(
                Time::from_millis(1400),
                FaultKind::WakeDrop {
                    task: 1,
                    dur: Duration::from_millis(40),
                },
            );
        let run = || {
            let mut sim = Simulator::new(quick_cfg(1, 3), sfs(1)).with_faults(&plan);
            sim.schedule_arrival(Time::ZERO, "hog", weight(1), BehaviorSpec::Inf);
            sim.schedule_arrival(
                Time::ZERO,
                "sleeper",
                weight(1),
                BehaviorSpec::Interact {
                    think: Duration::from_millis(100),
                    burst: Duration::from_millis(5),
                },
            );
            sim.run()
        };
        let rep = run();
        assert_eq!(rep.health.faults_injected, 3);
        assert_eq!(rep.health.faults_recovered, 3);
        assert_eq!(rep.health.invariant_violations, 0);
        // Both tasks keep making progress after the faults.
        assert!(rep.task("hog").unwrap().service > Duration::from_secs(2));
        assert!(rep.task("sleeper").unwrap().completions > 10);
        let again = run();
        let a: Vec<_> = rep.tasks.iter().map(|t| t.service).collect();
        let b: Vec<_> = again.tasks.iter().map(|t| t.service).collect();
        assert_eq!(a, b, "faulted runs must stay deterministic");
    }

    #[test]
    fn same_tick_arrival_burst_is_fair_and_deterministic() {
        // 64 tasks arriving at the same instant exercise the batched
        // arrive path end to end (one arrive_batch, one dispatch sweep).
        let run = || {
            let mut sim = Simulator::new(quick_cfg(2, 3), sfs(2));
            for k in 0..64 {
                sim.schedule_arrival(Time::ZERO, &format!("t{k}"), weight(1), BehaviorSpec::Inf);
            }
            sim.run()
        };
        let rep = run();
        let shares = rep.shares();
        for (i, s) in shares.iter().enumerate() {
            assert!(
                (s - 1.0 / 64.0).abs() < 0.2 / 64.0,
                "task {i} share {s} far from 1/64"
            );
        }
        let again = run();
        let a: Vec<_> = rep.tasks.iter().map(|t| t.service).collect();
        let b: Vec<_> = again.tasks.iter().map(|t| t.service).collect();
        assert_eq!(a, b, "batched runs must stay deterministic");
    }
}
