//! The discrete-event SMP simulator.
//!
//! The simulator owns a clock (nanoseconds), `p` processors and a set of
//! tasks executing [`Behavior`] state machines. It drives any
//! [`Scheduler`] through exactly the event protocol a kernel would
//! (§3.1): dispatch on idle, `put_prev` on quantum expiry / block /
//! exit, `wake` on sleep timers, with *unsynchronised* quanta across
//! processors — each CPU carries its own quantum deadline, so a blocking
//! task on one CPU never aligns the others.
//!
//! Determinism: all events are ordered by `(time, sequence number)` and
//! all workload randomness is seeded, so a run is a pure function of its
//! configuration. A context-switch overhead (default 5 µs) is charged
//! whenever a CPU switches between different tasks; the quantum starts
//! after the switch completes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use sfs_core::gms::FluidGms;
use sfs_core::sched::{select_preemption_victim, Scheduler, SwitchReason};
use sfs_core::task::{CpuId, TaskId, TenantId, Weight};
use sfs_core::time::{Duration, Time};
use sfs_trace::{CounterTrack, TraceEvent, TraceRecorder};
use sfs_workloads::{Behavior, BehaviorSpec, Phase};

use crate::trace::{SimReport, Trace};

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of processors.
    pub cpus: u32,
    /// Simulated wall-clock length of the run.
    pub duration: Duration,
    /// Cost charged when a CPU switches between different tasks.
    pub ctx_switch: Duration,
    /// Sampling period for the cumulative-service curves.
    pub sample_every: Duration,
    /// Co-simulate the GMS fluid reference and report per-task error.
    pub track_gms: bool,
    /// Base seed for workload randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            cpus: 2,
            duration: Duration::from_secs(30),
            ctx_switch: Duration::from_micros(5),
            sample_every: Duration::from_millis(500),
            track_gms: false,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EvKind {
    Arrive(usize),
    Kill(usize),
    Wake(TaskId),
    CpuTimer { cpu: usize, token: u64 },
    Sample,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Ev {
    at: Time,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    Running(usize),
    Sleeping,
    Exited,
}

struct SimTask {
    weight: Weight,
    behavior: Box<dyn Behavior>,
    attached: bool,
    state: TState,
    /// Remaining CPU demand of the current compute phase.
    remaining: Duration,
    /// When the task last became runnable (for response times).
    last_wake: Time,
    /// A response sample is pending for the current compute phase.
    awaiting_response: bool,
    /// Sequential-stream membership (next job spawns on exit).
    stream: Option<usize>,
    /// Tenant group the task attaches under, for hierarchical policies.
    tenant: Option<TenantId>,
}

#[derive(Debug, Clone, Copy)]
struct Cpu {
    current: Option<TaskId>,
    dispatched_at: Time,
    /// Compute charging starts here (after the context switch).
    last_charge: Time,
    quantum_deadline: Time,
    token: u64,
    last_task: Option<TaskId>,
}

impl Cpu {
    fn idle() -> Cpu {
        Cpu {
            current: None,
            dispatched_at: Time::ZERO,
            last_charge: Time::ZERO,
            quantum_deadline: Time::ZERO,
            token: 0,
            last_task: None,
        }
    }
}

struct PendingArrival {
    name: String,
    weight: Weight,
    spec: BehaviorSpec,
    seed: u64,
    tenant: Option<TenantId>,
    stream: Option<usize>,
    spawned: Option<TaskId>,
}

/// A sequential job stream: when one job exits, the next arrives.
struct StreamState {
    prefix: String,
    weight: Weight,
    spec: BehaviorSpec,
    gap: Duration,
    until: Time,
    spawned: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    cfg: SimConfig,
    sched: Box<dyn Scheduler>,
    now: Time,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    cpus: Vec<Cpu>,
    tasks: HashMap<TaskId, SimTask>,
    arrivals: Vec<PendingArrival>,
    streams: Vec<StreamState>,
    next_id: u64,
    trace: Trace,
    gms: Option<FluidGms>,
    gms_last: Time,
    ctx_switches: u64,
    rec: TraceRecorder,
    /// Locally buffered trace events: the simulator is single-threaded,
    /// so events accumulate in a plain `Vec` (one push per event, no
    /// lock) and flush into the shared recorder in bulk at end of run.
    trace_buf: Vec<TraceEvent>,
    /// True once any arrived task carries a tenant — lets the slice-end
    /// recording hook skip the per-event tenant lookup in the common
    /// tenant-less case.
    tenants_present: bool,
    /// (readjust_calls, weights_clamped) at the previous sample, for
    /// per-sample `Readjust` epoch deltas when recording.
    last_readjust: (u64, u64),
}

impl Simulator {
    /// Creates a simulator driving the given scheduling policy.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler's CPU count differs from the config's.
    pub fn new(cfg: SimConfig, sched: Box<dyn Scheduler>) -> Simulator {
        assert_eq!(
            sched.cpus(),
            cfg.cpus,
            "scheduler configured for a different machine"
        );
        let gms = cfg.track_gms.then(|| FluidGms::new(cfg.cpus));
        let mut sim = Simulator {
            cpus: vec![Cpu::idle(); cfg.cpus as usize],
            cfg,
            sched,
            now: Time::ZERO,
            events: BinaryHeap::new(),
            seq: 0,
            tasks: HashMap::new(),
            arrivals: Vec::new(),
            streams: Vec::new(),
            next_id: 1,
            trace: Trace::default(),
            gms,
            gms_last: Time::ZERO,
            ctx_switches: 0,
            rec: TraceRecorder::off(),
            trace_buf: Vec::new(),
            tenants_present: false,
            last_readjust: (0, 0),
        };
        let first_sample = sim.cfg.sample_every;
        sim.post(Time::ZERO + first_sample, EvKind::Sample);
        sim
    }

    /// Attaches an event recorder; every scheduling event of the run is
    /// emitted into it (see the `sfs-trace` crate). The recorder is a
    /// shared handle — keep a clone and call `finish()` after
    /// [`Simulator::run`] to collect the trace.
    #[must_use]
    pub fn with_recorder(mut self, rec: TraceRecorder) -> Simulator {
        if rec.on() {
            // One generous up-front allocation keeps buffer growth (and
            // its page-fault bursts) out of the recorded hot path.
            self.trace_buf.reserve(32 * 1024);
        }
        self.rec = rec;
        self
    }

    /// Schedules a task arrival. Returns the arrival index (usable with
    /// [`Simulator::schedule_kill`]).
    pub fn schedule_arrival(
        &mut self,
        at: Time,
        name: &str,
        weight: Weight,
        spec: BehaviorSpec,
    ) -> usize {
        self.schedule_arrival_inner(at, name.to_string(), weight, spec, None, None)
    }

    /// Schedules a task arrival bound to a tenant group. The task
    /// attaches via [`Scheduler::attach_tenant`], so hierarchical
    /// policies account it to that group; flat policies ignore the
    /// binding. Returns the arrival index.
    pub fn schedule_arrival_tenant(
        &mut self,
        at: Time,
        name: &str,
        weight: Weight,
        spec: BehaviorSpec,
        tenant: Option<TenantId>,
    ) -> usize {
        self.schedule_arrival_inner(at, name.to_string(), weight, spec, tenant, None)
    }

    fn schedule_arrival_inner(
        &mut self,
        at: Time,
        name: String,
        weight: Weight,
        spec: BehaviorSpec,
        tenant: Option<TenantId>,
        stream: Option<usize>,
    ) -> usize {
        let idx = self.arrivals.len();
        let seed = self
            .cfg
            .seed
            .wrapping_mul(1_000_003)
            .wrapping_add(idx as u64);
        self.arrivals.push(PendingArrival {
            name,
            weight,
            spec,
            seed,
            tenant,
            stream,
            spawned: None,
        });
        self.post(at, EvKind::Arrive(idx));
        idx
    }

    /// Schedules a kill of the task created by arrival `idx`.
    pub fn schedule_kill(&mut self, at: Time, idx: usize) {
        self.post(at, EvKind::Kill(idx));
    }

    /// Registers a sequential job stream: the first job arrives at
    /// `first`, and each subsequent job arrives `gap` after the previous
    /// one exits, until `until`.
    pub fn add_stream(
        &mut self,
        first: Time,
        prefix: &str,
        weight: Weight,
        spec: BehaviorSpec,
        gap: Duration,
        until: Time,
    ) {
        let sidx = self.streams.len();
        self.streams.push(StreamState {
            prefix: prefix.to_string(),
            weight,
            spec: spec.clone(),
            gap,
            until,
            spawned: 1,
        });
        let name = format!("{prefix}#1");
        self.schedule_arrival_inner(first, name, weight, spec, None, Some(sidx));
    }

    fn post(&mut self, at: Time, kind: EvKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn gms_advance(&mut self) {
        if let Some(g) = &mut self.gms {
            g.advance(self.now.since(self.gms_last));
        }
        self.gms_last = self.now;
    }

    /// Runs to the configured duration and produces the report.
    pub fn run(mut self) -> SimReport {
        while let Some(Reverse(ev)) = self.events.pop() {
            if ev.at.as_nanos() > self.cfg.duration.as_nanos() {
                break;
            }
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.gms_advance();
            match ev.kind {
                EvKind::Arrive(idx) => self.on_arrive(idx),
                EvKind::Kill(idx) => self.on_kill(idx),
                EvKind::Wake(id) => self.on_wake(id),
                EvKind::CpuTimer { cpu, token } => self.on_cpu_timer(cpu, token),
                EvKind::Sample => self.on_sample(),
            }
        }
        // Wind down at the end-of-run instant.
        self.now = Time(self.cfg.duration.as_nanos());
        self.gms_advance();
        for i in 0..self.cpus.len() {
            if self.cpus[i].current.is_some() {
                self.stop_running(i, SwitchReason::Preempted);
            }
        }
        self.final_sample();
        self.rec.emit_many(std::mem::take(&mut self.trace_buf));

        let trace = std::mem::take(&mut self.trace);
        let mut report = trace.into_report(
            self.sched.name(),
            self.cfg.cpus,
            self.cfg.duration,
            self.sched.stats(),
            self.ctx_switches,
        );
        if let Some(g) = &self.gms {
            for t in &mut report.tasks {
                let ideal = g.service(t.id);
                let err = if ideal >= t.service {
                    ideal - t.service
                } else {
                    t.service - ideal
                };
                t.gms_error = Some(err);
            }
        }
        report
    }

    // ---- event handlers -------------------------------------------------

    fn on_arrive(&mut self, idx: usize) {
        let a = &mut self.arrivals[idx];
        let id = TaskId(self.next_id);
        self.next_id += 1;
        a.spawned = Some(id);
        let behavior = a.spec.build(a.seed);
        let iteration_cost = behavior.iteration_cost();
        let name = a.name.clone();
        let weight = a.weight;
        let stream = a.stream;
        let tenant = a.tenant;
        self.tenants_present |= tenant.is_some();
        self.trace
            .register(id, &name, weight.get(), tenant, iteration_cost, self.now);
        self.rec.register_task(id, &name, weight.get(), tenant);
        self.tasks.insert(
            id,
            SimTask {
                weight,
                behavior,
                attached: false,
                state: TState::Sleeping,
                remaining: Duration::ZERO,
                last_wake: self.now,
                awaiting_response: false,
                stream,
                tenant,
            },
        );
        self.continue_task(id);
    }

    fn on_kill(&mut self, idx: usize) {
        let Some(id) = self.arrivals[idx].spawned else {
            return;
        };
        let Some(task) = self.tasks.get(&id) else {
            return;
        };
        match task.state {
            TState::Exited => {}
            TState::Running(cpu) => {
                self.stop_running(cpu, SwitchReason::Exited);
                self.finish_task(id);
                self.dispatch(cpu);
            }
            TState::Ready => {
                self.sched.detach(id, self.now);
                self.finish_task(id);
            }
            TState::Sleeping => {
                if task.attached {
                    self.sched.detach(id, self.now);
                }
                self.finish_task(id);
            }
        }
    }

    fn on_wake(&mut self, id: TaskId) {
        let Some(task) = self.tasks.get(&id) else {
            return;
        };
        if task.state != TState::Sleeping {
            return; // killed or already woken
        }
        self.continue_task(id);
    }

    fn on_cpu_timer(&mut self, cpu_idx: usize, token: u64) {
        if self.cpus[cpu_idx].token != token {
            return; // stale timer
        }
        let id = self.cpus[cpu_idx].current.expect("timer fired on idle CPU");
        self.charge_compute(cpu_idx);
        let task = self.tasks.get_mut(&id).unwrap();
        if !task.remaining.is_zero() {
            // Quantum expired mid-phase.
            self.stop_running(cpu_idx, SwitchReason::Preempted);
            self.tasks.get_mut(&id).unwrap().state = TState::Ready;
            self.dispatch(cpu_idx);
            return;
        }
        // The compute phase completed.
        let response = if task.awaiting_response {
            task.awaiting_response = false;
            Some(self.now.since(task.last_wake))
        } else {
            None
        };
        self.trace.complete(id, response);
        match self.resolve_next_phase(id) {
            Resolved::Compute(d) => {
                let cpu = &mut self.cpus[cpu_idx];
                let task = self.tasks.get_mut(&id).unwrap();
                task.remaining = d;
                if self.now < cpu.quantum_deadline {
                    // Keep running within the same quantum.
                    cpu.token += 1;
                    let fire = (self.now + d).min(cpu.quantum_deadline);
                    let token = cpu.token;
                    self.post(
                        fire,
                        EvKind::CpuTimer {
                            cpu: cpu_idx,
                            token,
                        },
                    );
                } else {
                    self.stop_running(cpu_idx, SwitchReason::Preempted);
                    self.tasks.get_mut(&id).unwrap().state = TState::Ready;
                    self.dispatch(cpu_idx);
                }
            }
            Resolved::Sleep(until) => {
                self.stop_running(cpu_idx, SwitchReason::Blocked);
                self.tasks.get_mut(&id).unwrap().state = TState::Sleeping;
                if let Some(g) = &mut self.gms {
                    g.set_runnable(id, false);
                }
                self.post(until, EvKind::Wake(id));
                self.dispatch(cpu_idx);
            }
            Resolved::Exit => {
                self.stop_running(cpu_idx, SwitchReason::Exited);
                self.finish_task(id);
                self.dispatch(cpu_idx);
            }
        }
    }

    fn on_sample(&mut self) {
        let in_flight: Vec<(TaskId, Duration)> = self
            .cpus
            .iter()
            .filter_map(|c| c.current.map(|id| (id, self.now.since(c.dispatched_at))))
            .collect();
        let ids: Vec<TaskId> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.state != TState::Exited)
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let extra = in_flight
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, d)| *d)
                .unwrap_or(Duration::ZERO);
            self.trace.sample(id, self.now, extra);
        }
        self.record_counters();
        let next = self.now + self.cfg.sample_every;
        if next.as_nanos() <= self.cfg.duration.as_nanos() {
            self.post(next, EvKind::Sample);
        }
    }

    fn final_sample(&mut self) {
        let ids: Vec<TaskId> = self.tasks.keys().copied().collect();
        for id in ids {
            self.trace.sample(id, self.now, Duration::ZERO);
        }
        self.record_counters();
    }

    // ---- task lifecycle -------------------------------------------------

    /// Pulls the task's next phase(s) after an arrival or wakeup and
    /// moves it into the right state.
    fn continue_task(&mut self, id: TaskId) {
        match self.resolve_next_phase(id) {
            Resolved::Compute(d) => {
                let task = self.tasks.get_mut(&id).unwrap();
                task.remaining = d;
                task.last_wake = self.now;
                task.awaiting_response = true;
                self.make_runnable(id);
            }
            Resolved::Sleep(until) => {
                self.tasks.get_mut(&id).unwrap().state = TState::Sleeping;
                self.post(until, EvKind::Wake(id));
            }
            Resolved::Exit => {
                let task = &self.tasks[&id];
                if task.attached {
                    self.sched.detach(id, self.now);
                }
                self.finish_task(id);
            }
        }
    }

    /// Resolves behaviour output to a definite next step, skipping
    /// zero-cost computes and past deadlines.
    fn resolve_next_phase(&mut self, id: TaskId) -> Resolved {
        for _ in 0..10_000 {
            let now = self.now;
            let task = self.tasks.get_mut(&id).unwrap();
            match task.behavior.next(now) {
                Phase::Compute(d) if !d.is_zero() => return Resolved::Compute(d),
                Phase::Compute(_) => {
                    self.trace.complete(id, None);
                }
                Phase::Block(d) => return Resolved::Sleep(now + d),
                Phase::BlockUntil(t) => {
                    if t > now {
                        return Resolved::Sleep(t);
                    }
                }
                Phase::Exit => return Resolved::Exit,
            }
        }
        panic!("behavior of task {id} made no progress over 10000 phases");
    }

    fn make_runnable(&mut self, id: TaskId) {
        {
            let task = self.tasks.get_mut(&id).unwrap();
            let weight = task.weight;
            let tenant = task.tenant;
            if task.attached {
                self.sched.wake(id, self.now);
                if let Some(g) = &mut self.gms {
                    g.set_runnable(id, true);
                }
            } else {
                self.sched.attach_tenant(id, weight, tenant, self.now);
                task.attached = true;
                if let Some(g) = &mut self.gms {
                    g.add(id, weight, true);
                }
            }
            self.tasks.get_mut(&id).unwrap().state = TState::Ready;
        }
        if self.rec.on() {
            self.trace_buf.push(TraceEvent::Wake {
                t: self.now.as_nanos(),
                task: id,
            });
        }
        self.dispatch_all();
        self.preempt_check(id);
    }

    fn finish_task(&mut self, id: TaskId) {
        let task = self.tasks.get_mut(&id).unwrap();
        task.state = TState::Exited;
        let stream = task.stream;
        self.trace.exited(id, self.now);
        if let Some(g) = &mut self.gms {
            if task.attached {
                g.remove(id);
            }
        }
        if let Some(sidx) = stream {
            let next_at = self.now + self.streams[sidx].gap;
            let s = &mut self.streams[sidx];
            if next_at < s.until {
                s.spawned += 1;
                let name = format!("{}#{}", s.prefix, s.spawned);
                let (weight, spec) = (s.weight, s.spec.clone());
                self.schedule_arrival_inner(next_at, name, weight, spec, None, Some(sidx));
            }
        }
    }

    // ---- CPU handling ---------------------------------------------------

    fn dispatch_all(&mut self) {
        for i in 0..self.cpus.len() {
            self.dispatch(i);
        }
    }

    fn dispatch(&mut self, cpu_idx: usize) {
        if self.cpus[cpu_idx].current.is_some() {
            return;
        }
        let Some(next) = self.sched.pick_next(CpuId(cpu_idx as u32), self.now) else {
            return;
        };
        let switching = self.cpus[cpu_idx].last_task != Some(next);
        if switching {
            self.ctx_switches += 1;
        }
        if self.rec.on() {
            let t = self.now.as_nanos();
            if switching {
                self.trace_buf.push(TraceEvent::CtxSwitch {
                    t,
                    cpu: cpu_idx as u32,
                    from: self.cpus[cpu_idx].last_task,
                    to: next,
                });
            }
            self.trace_buf.push(TraceEvent::SliceBegin {
                t,
                cpu: cpu_idx as u32,
                task: next,
            });
        }
        let cs = if switching {
            self.cfg.ctx_switch
        } else {
            Duration::ZERO
        };
        let slice = self.sched.time_slice(next);
        let task = self.tasks.get_mut(&next).unwrap();
        debug_assert_eq!(task.state, TState::Ready, "dispatching non-ready task");
        task.state = TState::Running(cpu_idx);
        let remaining = task.remaining;
        let cpu = &mut self.cpus[cpu_idx];
        cpu.current = Some(next);
        cpu.dispatched_at = self.now;
        cpu.last_charge = self.now + cs;
        cpu.quantum_deadline = cpu.last_charge + slice;
        cpu.token += 1;
        let fire = (cpu.last_charge + remaining).min(cpu.quantum_deadline);
        let token = cpu.token;
        self.post(
            fire,
            EvKind::CpuTimer {
                cpu: cpu_idx,
                token,
            },
        );
    }

    /// Charges compute progress since the last charge point.
    fn charge_compute(&mut self, cpu_idx: usize) {
        let cpu = &mut self.cpus[cpu_idx];
        let id = cpu.current.expect("charging idle CPU");
        let elapsed = self.now.since(cpu.last_charge);
        cpu.last_charge = self.now.max(cpu.last_charge);
        let task = self.tasks.get_mut(&id).unwrap();
        task.remaining = task.remaining.saturating_sub(elapsed);
    }

    /// Removes the current task from a CPU, reporting actual usage to
    /// the scheduler. The caller updates the engine-side task state.
    fn stop_running(&mut self, cpu_idx: usize, reason: SwitchReason) {
        self.charge_compute(cpu_idx);
        let cpu = &mut self.cpus[cpu_idx];
        let id = cpu.current.take().expect("stopping idle CPU");
        let q = self.now.since(cpu.dispatched_at);
        cpu.last_task = Some(id);
        cpu.token += 1; // invalidate any pending timer
        self.sched.put_prev(id, q, reason, self.now);
        self.trace.add_service(id, q);
        if self.rec.on() {
            let t = self.now.as_nanos();
            self.trace_buf.push(TraceEvent::SliceEnd {
                t,
                cpu: cpu_idx as u32,
                task: id,
                reason,
            });
            if self.tenants_present {
                if let Some(tenant) = self.tasks.get(&id).and_then(|task| task.tenant) {
                    self.rec.add_tenant_service(t, tenant, q.as_nanos());
                }
            }
        }
    }

    fn preempt_check(&mut self, woken: TaskId) {
        if self.tasks.get(&woken).map(|t| t.state) != Some(TState::Ready) {
            return;
        }
        let candidates: Vec<(usize, TaskId, Duration)> = self
            .cpus
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.current
                    .map(|running| (i, running, self.now.since(c.dispatched_at)))
            })
            .collect();
        let Some((i, running)) =
            select_preemption_victim(self.sched.as_ref(), woken, &candidates, self.now)
        else {
            return;
        };
        if self.rec.on() {
            self.trace_buf.push(TraceEvent::PreemptEvict {
                t: self.now.as_nanos(),
                cpu: i as u32,
                victim: running,
                by: woken,
            });
        }
        self.stop_running(i, SwitchReason::Preempted);
        self.tasks.get_mut(&running).unwrap().state = TState::Ready;
        self.dispatch(i);
    }

    /// Emits counter samples and readjustment-epoch deltas (recording
    /// runs only; called from the periodic sample event).
    fn record_counters(&mut self) {
        if !self.rec.on() {
            return;
        }
        let t = self.now.as_nanos();
        if let Some(v) = self.sched.virtual_time() {
            self.trace_buf.push(TraceEvent::Counter {
                t,
                track: CounterTrack::VirtualTime,
                value: v.to_f64(),
            });
        }
        self.trace_buf.push(TraceEvent::Counter {
            t,
            track: CounterTrack::Runnable,
            value: self.sched.nr_runnable() as f64,
        });
        let mut max_surplus: Option<f64> = None;
        let mut min_phi: Option<f64> = None;
        for cpu in &self.cpus {
            let Some(id) = cpu.current else { continue };
            let ran = self.now.since(cpu.dispatched_at);
            if let Some(s) = self.sched.charged_surplus(id, ran, self.now) {
                let s = s.to_f64();
                max_surplus = Some(max_surplus.map_or(s, |m| m.max(s)));
            }
            if let Some(phi) = self.sched.adjusted_weight_of(id) {
                let phi = phi.to_f64();
                min_phi = Some(min_phi.map_or(phi, |m| m.min(phi)));
            }
        }
        if let Some(value) = max_surplus {
            self.trace_buf.push(TraceEvent::Counter {
                t,
                track: CounterTrack::MaxRunSurplus,
                value,
            });
        }
        if let Some(value) = min_phi {
            self.trace_buf.push(TraceEvent::Counter {
                t,
                track: CounterTrack::MinRunPhi,
                value,
            });
        }
        let stats = self.sched.stats();
        let (calls, clamped) = (stats.readjust_calls, stats.weights_clamped);
        if calls > self.last_readjust.0 {
            self.trace_buf.push(TraceEvent::Readjust {
                t,
                calls: calls - self.last_readjust.0,
                clamped: clamped.saturating_sub(self.last_readjust.1),
            });
        }
        self.last_readjust = (calls, clamped);
    }
}

enum Resolved {
    Compute(Duration),
    Sleep(Time),
    Exit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::policy::PolicySpec;
    use sfs_core::task::weight;

    fn quick_cfg(cpus: u32, secs: u64) -> SimConfig {
        SimConfig {
            cpus,
            duration: Duration::from_secs(secs),
            sample_every: Duration::from_millis(200),
            ..SimConfig::default()
        }
    }

    fn sfs(cpus: u32) -> Box<dyn Scheduler> {
        PolicySpec::sfs()
            .with_quantum(Duration::from_millis(20))
            .build(cpus)
    }

    #[test]
    fn single_cpu_bound_task_gets_everything() {
        let mut sim = Simulator::new(quick_cfg(1, 2), sfs(1));
        sim.schedule_arrival(Time::ZERO, "T1", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let t = rep.task("T1").unwrap();
        // Minus context switches (one initial dispatch), service ≈ 2 s.
        assert!(t.service >= Duration::from_millis(1990), "{:?}", t.service);
    }

    #[test]
    fn proportional_shares_on_two_cpus() {
        let mut sim = Simulator::new(quick_cfg(2, 10), sfs(2));
        sim.schedule_arrival(Time::ZERO, "heavy", weight(2), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "light1", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "light2", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let h = rep.task("heavy").unwrap().service.as_secs_f64();
        let l1 = rep.task("light1").unwrap().service.as_secs_f64();
        let l2 = rep.task("light2").unwrap().service.as_secs_f64();
        assert!((h / l1 - 2.0).abs() < 0.05, "h/l1 = {}", h / l1);
        assert!((h / l2 - 2.0).abs() < 0.05, "h/l2 = {}", h / l2);
        // Work conservation: total ≈ 2 CPUs × 10 s.
        assert!(h + l1 + l2 > 19.8, "total {}", h + l1 + l2);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = Simulator::new(quick_cfg(2, 5), sfs(2));
            sim.schedule_arrival(Time::ZERO, "a", weight(3), BehaviorSpec::Inf);
            sim.schedule_arrival(
                Time::ZERO,
                "b",
                weight(1),
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(40),
                    io: Duration::from_millis(2),
                },
            );
            sim.schedule_arrival(
                Time::from_secs(1),
                "c",
                weight(1),
                BehaviorSpec::Interact {
                    think: Duration::from_millis(50),
                    burst: Duration::from_millis(5),
                },
            );
            let rep = sim.run();
            rep.tasks
                .iter()
                .map(|t| (t.name.clone(), t.service, t.completions))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mpeg_alone_hits_target_frame_rate() {
        let mut sim = Simulator::new(quick_cfg(1, 10), sfs(1));
        sim.schedule_arrival(
            Time::ZERO,
            "mpeg",
            weight(1),
            BehaviorSpec::Mpeg {
                fps: 30,
                frame_cost: Duration::from_millis(10),
            },
        );
        let rep = sim.run();
        let t = rep.task("mpeg").unwrap();
        let rate = t.completion_rate(Time::from_secs(10));
        assert!((rate - 30.0).abs() < 1.0, "frame rate {rate}");
    }

    #[test]
    fn mpeg_degrades_when_overloaded() {
        // Frame cost 50 ms at 30 fps needs 1.5 CPUs: on one CPU the
        // decoder can do at most 20 fps.
        let mut sim = Simulator::new(quick_cfg(1, 10), sfs(1));
        sim.schedule_arrival(
            Time::ZERO,
            "mpeg",
            weight(1),
            BehaviorSpec::Mpeg {
                fps: 30,
                frame_cost: Duration::from_millis(50),
            },
        );
        let rep = sim.run();
        let rate = rep
            .task("mpeg")
            .unwrap()
            .completion_rate(Time::from_secs(10));
        assert!((rate - 20.0).abs() < 1.0, "frame rate {rate}");
    }

    #[test]
    fn wake_preemption_selects_worst_victim_not_first() {
        // Regression: preempt_check used to evict the *first* CPU whose
        // running task lost to the woken one. With a near-tie on CPU 0
        // and a far-worse task on CPU 2, the victim must be CPU 2.
        let mut sched = PolicySpec::sfs()
            .with_quantum(Duration::from_millis(1))
            .build(3);
        let now = Time::ZERO;
        for i in 1..=4u64 {
            sched.attach(TaskId(i), weight(1), now);
        }
        // Deterministic id tie-break: T1→cpu0, T2→cpu1, T3→cpu2;
        // T4 stays ready with zero surplus.
        for c in 0..3u32 {
            assert_eq!(
                sched.pick_next(sfs_core::task::CpuId(c), now),
                Some(TaskId(c as u64 + 1))
            );
        }
        let candidates = [
            (0usize, TaskId(1), Duration::from_micros(200)),
            (1usize, TaskId(2), Duration::from_micros(150)),
            (2usize, TaskId(3), Duration::from_millis(50)),
        ];
        // Every CPU is preemptable (all charged surpluses exceed the
        // woken task's zero surplus plus the margin)...
        for &(_, running, ran) in &candidates {
            assert!(sched.wake_preempts(TaskId(4), running, ran, now));
        }
        // ...but the selected victim is the largest-surplus one.
        let victim = select_preemption_victim(sched.as_ref(), TaskId(4), &candidates, now);
        assert_eq!(victim, Some((2, TaskId(3))));
        // With no eligible CPU there is no victim.
        let none = select_preemption_victim(sched.as_ref(), TaskId(4), &[], now);
        assert_eq!(none, None);
    }

    #[test]
    fn interactive_response_reasonable_under_sfs() {
        let mut sim = Simulator::new(quick_cfg(1, 20), sfs(1));
        sim.schedule_arrival(
            Time::ZERO,
            "interact",
            weight(1),
            BehaviorSpec::Interact {
                think: Duration::from_millis(100),
                burst: Duration::from_millis(5),
            },
        );
        sim.schedule_arrival(Time::ZERO, "hog", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let t = rep.task("interact").unwrap();
        let r = t.responses.as_ref().expect("no responses recorded");
        assert!(r.count() > 50, "too few requests: {}", r.count());
        // Wake preemption keeps responses near the burst length.
        assert!(r.mean() < 30.0, "mean response {} ms too high", r.mean());
    }

    #[test]
    fn kill_stops_a_task() {
        let mut sim = Simulator::new(quick_cfg(2, 10), sfs(2));
        let _a = sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        let b = sim.schedule_arrival(Time::ZERO, "b", weight(1), BehaviorSpec::Inf);
        sim.schedule_kill(Time::from_secs(3), b);
        let rep = sim.run();
        let b = rep.task("b").unwrap();
        assert!(b.exited.is_some());
        assert!(
            b.service <= Duration::from_millis(3050),
            "b kept running: {:?}",
            b.service
        );
    }

    #[test]
    fn stream_spawns_jobs_back_to_back() {
        let mut sim = Simulator::new(quick_cfg(2, 5), sfs(2));
        sim.schedule_arrival(Time::ZERO, "bg", weight(1), BehaviorSpec::Inf);
        sim.add_stream(
            Time::ZERO,
            "short",
            weight(5),
            BehaviorSpec::Finite(Duration::from_millis(300)),
            Duration::ZERO,
            Time::from_secs(5),
        );
        let rep = sim.run();
        let shorts: Vec<_> = rep
            .tasks
            .iter()
            .filter(|t| t.name.starts_with("short#"))
            .collect();
        // 2 CPUs, 1 hog: a short job effectively owns a CPU, so ~300 ms
        // per job ⇒ ≈ 16 jobs in 5 s.
        assert!(shorts.len() >= 10, "only {} short jobs ran", shorts.len());
        // All but possibly the last exited after receiving 300 ms.
        for s in &shorts[..shorts.len() - 1] {
            assert!(s.exited.is_some(), "{} never finished", s.name);
            assert!(
                s.service >= Duration::from_millis(299),
                "{} got {:?}",
                s.name,
                s.service
            );
        }
    }

    #[test]
    fn gms_tracking_bounds_sfs_error() {
        let cfg = SimConfig {
            track_gms: true,
            ..quick_cfg(2, 10)
        };
        let mut sim = Simulator::new(cfg, sfs(2));
        sim.schedule_arrival(Time::ZERO, "a", weight(4), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(2), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "c", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "d", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        for t in &rep.tasks {
            let err = t.gms_error.expect("gms error missing");
            // Deviation from the fluid ideal stays within a few quanta.
            assert!(
                err < Duration::from_millis(100),
                "{}: GMS error {err}",
                t.name
            );
        }
    }

    #[test]
    fn timesharing_ignores_weights_in_sim() {
        let mut sim = Simulator::new(quick_cfg(2, 10), PolicySpec::time_sharing().build(2));
        sim.schedule_arrival(Time::ZERO, "w10", weight(10), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "w1a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "w1b", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        let a = rep.task("w10").unwrap().service.as_secs_f64();
        let b = rep.task("w1a").unwrap().service.as_secs_f64();
        assert!((a / b - 1.0).abs() < 0.1, "time sharing skewed: {}", a / b);
    }

    #[test]
    fn context_switches_are_counted() {
        let mut sim = Simulator::new(quick_cfg(1, 2), sfs(1));
        sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(1), BehaviorSpec::Inf);
        let rep = sim.run();
        // 2 s / 20 ms quanta alternating between two tasks.
        assert!(rep.ctx_switches > 50, "{}", rep.ctx_switches);
    }

    #[test]
    fn series_are_monotone() {
        let mut sim = Simulator::new(quick_cfg(2, 5), sfs(2));
        sim.schedule_arrival(Time::ZERO, "a", weight(1), BehaviorSpec::Inf);
        sim.schedule_arrival(Time::ZERO, "b", weight(3), BehaviorSpec::Inf);
        let rep = sim.run();
        for t in &rep.tasks {
            let pts = t.series.points();
            assert!(pts.len() > 5, "{} has too few samples", t.name);
            for w in pts.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-9, "{} not monotone", t.name);
            }
        }
    }
}
