//! # sfs-sim — a deterministic discrete-event SMP simulator
//!
//! The substrate on which the paper's experiments are reproduced
//! deterministically. It models `p` processors with unsynchronised
//! quanta, context-switch overhead, blocking/wakeup, arrivals and
//! departures, and drives any [`sfs_core::sched::Scheduler`]
//! implementation through the same event protocol the Linux kernel
//! implementation used (§3.1).
//!
//! * [`engine::Simulator`] — the event loop and machine model.
//! * [`scenario`] — declarative experiment descriptions (tasks,
//!   replicas, kill times, sequential short-job streams).
//! * [`trace`] — per-task measurements and the final [`trace::SimReport`].
//!
//! Runs are pure functions of their configuration: all randomness is
//! seeded per task, and all events are totally ordered.
//!
//! ```
//! use sfs_core::policy::PolicySpec;
//! use sfs_core::time::Duration;
//! use sfs_sim::{Scenario, SimConfig, TaskSpec};
//! use sfs_workloads::BehaviorSpec;
//!
//! let cfg = SimConfig {
//!     cpus: 2,
//!     duration: Duration::from_secs(2),
//!     ..SimConfig::default()
//! };
//! // 2:1:1 is feasible on two CPUs: shares are 1/2, 1/4, 1/4.
//! let policy: PolicySpec = "sfs".parse().unwrap();
//! let report = Scenario::new("demo", cfg)
//!     .task(TaskSpec::new("heavy", 2, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("light1", 1, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("light2", 1, BehaviorSpec::Inf))
//!     .try_run(policy.build(2))
//!     .unwrap();
//! let h = report.task("heavy").unwrap().service;
//! let l = report.task("light1").unwrap().service;
//! assert!(h > l);
//! ```

pub mod engine;
pub mod scenario;
pub mod trace;
pub mod wheel;

pub use engine::{SimConfig, Simulator};
pub use scenario::{Scenario, ScenarioError, StreamSpec, TaskSpec};
pub use trace::{RunHealth, SimReport, TaskReport};
