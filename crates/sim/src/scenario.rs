//! Declarative experiment descriptions.
//!
//! A [`Scenario`] names a machine, a duration and a set of task specs
//! (plus optional sequential job streams), and can be run under any
//! boxed scheduling policy — or, through the `sfs-experiment` crate's
//! `Experiment` front-end, on either execution substrate. The figure
//! harnesses in `sfs-bench` are built out of these, and the integration
//! tests reuse the exact paper scenarios.

use core::fmt;

use sfs_core::admit::AdmissionPolicy;
use sfs_core::fault::FaultPlan;
use sfs_core::sched::Scheduler;
use sfs_core::task::Weight;
use sfs_core::time::{Duration, Time};
use sfs_workloads::BehaviorSpec;

use crate::engine::{SimConfig, Simulator};
use crate::trace::SimReport;

/// A malformed [`Scenario`], reported by [`Scenario::validate`] and
/// [`Scenario::try_run`] instead of a panic deep inside the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A task spec carries weight 0 (weights are strictly positive, §2).
    ZeroTaskWeight {
        /// Name of the offending task spec.
        task: String,
    },
    /// A stream spec carries weight 0.
    ZeroStreamWeight {
        /// Name of the offending stream spec.
        stream: String,
    },
    /// Two task or stream specs share a base name, which would make
    /// report lookups by name ambiguous.
    DuplicateTaskName {
        /// The colliding name.
        task: String,
    },
    /// A tenant group was declared with no member tasks, so it could
    /// never receive service.
    EmptyTenant {
        /// Name of the empty tenant group.
        tenant: String,
    },
    /// The machine has no processors.
    NoCpus,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::ZeroTaskWeight { task } => {
                write!(f, "task {task:?} has zero weight (weights must be ≥ 1)")
            }
            ScenarioError::ZeroStreamWeight { stream } => {
                write!(f, "stream {stream:?} has zero weight (weights must be ≥ 1)")
            }
            ScenarioError::DuplicateTaskName { task } => {
                write!(f, "duplicate task name {task:?} (names must be unique)")
            }
            ScenarioError::EmptyTenant { tenant } => {
                write!(f, "tenant {tenant:?} declares no tasks")
            }
            ScenarioError::NoCpus => write!(f, "scenario machine has zero processors"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One or more identical tasks in a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Base name; replicas are suffixed `#k`.
    pub name: String,
    /// Weight for each replica.
    pub weight: u64,
    /// Arrival time.
    pub arrive: Time,
    /// Kill time, if the task should be stopped mid-run.
    pub stop_at: Option<Time>,
    /// The workload.
    pub behavior: BehaviorSpec,
    /// Number of identical replicas (default 1).
    pub count: usize,
    /// Tenant group the task belongs to, matched against the policy's
    /// `groups(...)` clause by name (default none).
    pub tenant: Option<String>,
}

impl TaskSpec {
    /// A single task arriving at t=0.
    #[must_use]
    pub fn new(name: &str, weight: u64, behavior: BehaviorSpec) -> TaskSpec {
        TaskSpec {
            name: name.to_string(),
            weight,
            arrive: Time::ZERO,
            stop_at: None,
            behavior,
            count: 1,
            tenant: None,
        }
    }

    /// Binds the task to a tenant group, by the name used in the
    /// policy's `groups(...)` clause.
    #[must_use]
    pub fn in_tenant(mut self, tenant: &str) -> TaskSpec {
        self.tenant = Some(tenant.to_string());
        self
    }

    /// Sets the arrival time.
    #[must_use]
    pub fn arrive_at(mut self, t: Time) -> TaskSpec {
        self.arrive = t;
        self
    }

    /// Sets a kill time.
    #[must_use]
    pub fn stop_at(mut self, t: Time) -> TaskSpec {
        self.stop_at = Some(t);
        self
    }

    /// Replicates the spec into `n` identical tasks.
    #[must_use]
    pub fn replicated(mut self, n: usize) -> TaskSpec {
        self.count = n;
        self
    }
}

/// A sequential stream of short jobs (Example 2 / Fig. 5): each job
/// arrives when the previous one finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSpec {
    /// Name prefix; jobs are suffixed `#n`.
    pub name: String,
    /// Weight of each job.
    pub weight: u64,
    /// First job's arrival.
    pub first: Time,
    /// The per-job workload (typically [`BehaviorSpec::Finite`]).
    pub job: BehaviorSpec,
    /// Gap between a job's exit and the next arrival.
    pub gap: Duration,
    /// No job arrives at or after this instant.
    pub until: Time,
}

impl StreamSpec {
    /// A back-to-back stream starting at t=0 and running for the whole
    /// experiment.
    #[must_use]
    pub fn new(name: &str, weight: u64, job: BehaviorSpec) -> StreamSpec {
        StreamSpec {
            name: name.to_string(),
            weight,
            first: Time::ZERO,
            job,
            gap: Duration::ZERO,
            until: Time::MAX,
        }
    }

    /// Sets the first job's arrival time.
    #[must_use]
    pub fn starting_at(mut self, t: Time) -> StreamSpec {
        self.first = t;
        self
    }

    /// Sets the gap between a job's exit and the next arrival.
    #[must_use]
    pub fn with_gap(mut self, gap: Duration) -> StreamSpec {
        self.gap = gap;
        self
    }

    /// Stops issuing jobs at or after this instant.
    #[must_use]
    pub fn until(mut self, t: Time) -> StreamSpec {
        self.until = t;
        self
    }
}

/// A complete experiment description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name (for reports).
    pub name: String,
    /// Simulator configuration (machine, duration, sampling).
    pub config: SimConfig,
    /// Long-lived tasks.
    pub tasks: Vec<TaskSpec>,
    /// Sequential job streams.
    pub streams: Vec<StreamSpec>,
    /// Tenant groups declared via [`Scenario::tenant`], for validation.
    pub tenants: Vec<String>,
    /// Deterministic fault plan injected into every run of the
    /// scenario (see [`sfs_core::fault`]).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// Creates an empty scenario over the given machine config.
    #[must_use]
    pub fn new(name: &str, config: SimConfig) -> Scenario {
        Scenario {
            name: name.to_string(),
            config,
            tasks: Vec::new(),
            streams: Vec::new(),
            tenants: Vec::new(),
            faults: None,
        }
    }

    /// Adds a task spec.
    #[must_use]
    pub fn task(mut self, spec: TaskSpec) -> Scenario {
        self.tasks.push(spec);
        self
    }

    /// Adds a stream spec.
    #[must_use]
    pub fn stream(mut self, spec: StreamSpec) -> Scenario {
        self.streams.push(spec);
        self
    }

    /// Injects a deterministic fault plan into every run of the
    /// scenario (see [`sfs_core::fault`]). Faults travel with the
    /// scenario through capture/replay, so a chaotic run replays
    /// exactly.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Scenario {
        self.faults = Some(plan);
        self
    }

    /// Adds a tenant group's member tasks: every spec is bound to the
    /// named tenant, matching a `groups(...)` entry in the policy.
    ///
    /// ```
    /// use sfs_core::time::Duration;
    /// use sfs_sim::{Scenario, SimConfig, TaskSpec};
    /// use sfs_workloads::BehaviorSpec;
    ///
    /// let cfg = SimConfig {
    ///     cpus: 2,
    ///     duration: Duration::from_secs(1),
    ///     ..SimConfig::default()
    /// };
    /// let policy: sfs_core::policy::PolicySpec =
    ///     "sfs:groups(batch=sfq,frontend*3=sfs)".parse().unwrap();
    /// let report = Scenario::new("tenants", cfg)
    ///     .tenant("batch", [
    ///         TaskSpec::new("cruncher", 1, BehaviorSpec::Inf).replicated(4),
    ///     ])
    ///     .tenant("frontend", [
    ///         TaskSpec::new("web", 1, BehaviorSpec::Inf),
    ///     ])
    ///     .try_run(policy.build(2))
    ///     .unwrap();
    /// // frontend's share-3 tenant outweighs batch's 4 unit tasks.
    /// assert_eq!(report.tenant_shares().len(), 2);
    /// ```
    #[must_use]
    pub fn tenant(mut self, name: &str, specs: impl IntoIterator<Item = TaskSpec>) -> Scenario {
        self.tenants.push(name.to_string());
        for spec in specs {
            self.tasks.push(spec.in_tenant(name));
        }
        self
    }

    /// Checks the scenario for structural errors (zero weights, empty
    /// machine) without running it. Substrates call this up front so a
    /// malformed description fails fast with a typed error.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.config.cpus == 0 {
            return Err(ScenarioError::NoCpus);
        }
        for spec in &self.tasks {
            if spec.weight == 0 {
                return Err(ScenarioError::ZeroTaskWeight {
                    task: spec.name.clone(),
                });
            }
        }
        for s in &self.streams {
            if s.weight == 0 {
                return Err(ScenarioError::ZeroStreamWeight {
                    stream: s.name.clone(),
                });
            }
        }
        let mut names = std::collections::HashSet::new();
        for name in self
            .tasks
            .iter()
            .map(|t| &t.name)
            .chain(self.streams.iter().map(|s| &s.name))
        {
            if !names.insert(name.as_str()) {
                return Err(ScenarioError::DuplicateTaskName { task: name.clone() });
            }
        }
        for tenant in &self.tenants {
            if !self
                .tasks
                .iter()
                .any(|t| t.tenant.as_deref() == Some(tenant))
            {
                return Err(ScenarioError::EmptyTenant {
                    tenant: tenant.clone(),
                });
            }
        }
        Ok(())
    }

    /// Runs the scenario under the given scheduler on the simulator,
    /// reporting malformed scenarios as a [`ScenarioError`].
    pub fn try_run(&self, sched: Box<dyn Scheduler>) -> Result<SimReport, ScenarioError> {
        self.try_run_traced(sched, sfs_trace::TraceRecorder::off())
    }

    /// Like [`Scenario::try_run`], with scheduling events recorded into
    /// `rec` (keep a clone and call `finish()` afterwards to collect
    /// the trace).
    pub fn try_run_traced(
        &self,
        sched: Box<dyn Scheduler>,
        rec: sfs_trace::TraceRecorder,
    ) -> Result<SimReport, ScenarioError> {
        self.try_run_traced_admitted(sched, rec, None)
    }

    /// Like [`Scenario::try_run_traced`], with an admission policy
    /// enforced on every arrival. This is the entry point the
    /// `sfs-experiment` substrates use to honour a policy spec's
    /// `admit(...)` clause; the scenario's own fault plan (if any) is
    /// applied in every case.
    pub fn try_run_traced_admitted(
        &self,
        sched: Box<dyn Scheduler>,
        rec: sfs_trace::TraceRecorder,
        admission: Option<AdmissionPolicy>,
    ) -> Result<SimReport, ScenarioError> {
        self.validate()?;
        // Resolve tenant names to scheduler group ids before the
        // scheduler moves into the simulator. Names the policy does not
        // know (a flat policy, or a missing group) run tenant-less —
        // strict matching is the experiment layer's job.
        let bindings: Vec<_> = self
            .tasks
            .iter()
            .map(|spec| spec.tenant.as_deref().and_then(|g| sched.bind_tenant(g)))
            .collect();
        let mut sim = Simulator::new(self.config.clone(), sched).with_recorder(rec);
        if let Some(policy) = admission {
            sim = sim.with_admission(policy);
        }
        if let Some(plan) = &self.faults {
            sim = sim.with_faults(plan);
        }
        for (spec, tenant) in self.tasks.iter().zip(bindings) {
            let weight = Weight::new(spec.weight).expect("validated non-zero");
            // One interned base name per spec: replicas render as
            // "{base}#{k}" at report time, so a 10⁶-replica spec never
            // allocates per-task name strings.
            let sym = sim.intern_name(&spec.name);
            for k in 0..spec.count.max(1) {
                let replica = if spec.count > 1 { (k + 1) as u32 } else { 0 };
                let idx = sim.schedule_arrival_replica(
                    spec.arrive,
                    sym,
                    replica,
                    weight,
                    spec.behavior.clone(),
                    tenant,
                );
                if let Some(t) = spec.stop_at {
                    sim.schedule_kill(t, idx);
                }
            }
        }
        for s in &self.streams {
            sim.add_stream(
                s.first,
                &s.name,
                Weight::new(s.weight).expect("validated non-zero"),
                s.job.clone(),
                s.gap,
                s.until,
            );
        }
        Ok(sim.run())
    }

    /// Runs the scenario under the given scheduler; panicking
    /// convenience wrapper around [`Scenario::try_run`] for tests.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is malformed (see [`ScenarioError`]).
    pub fn run(&self, sched: Box<dyn Scheduler>) -> SimReport {
        self.try_run(sched)
            .unwrap_or_else(|e| panic!("scenario {:?}: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::policy::PolicySpec;

    fn sfs(cpus: u32) -> Box<dyn Scheduler> {
        PolicySpec::sfs().build(cpus)
    }

    #[test]
    fn replicated_tasks_get_numbered_names() {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_secs(2),
            ..SimConfig::default()
        };
        let scenario = Scenario::new("repl", cfg)
            .task(TaskSpec::new("solo", 1, BehaviorSpec::Inf))
            .task(TaskSpec::new("bg", 1, BehaviorSpec::Inf).replicated(3));
        let rep = scenario.run(sfs(2));
        assert!(rep.task("solo").is_some());
        assert!(rep.task("bg#1").is_some());
        assert!(rep.task("bg#3").is_some());
        assert!(rep.task("bg").is_none());
        assert_eq!(rep.tasks.len(), 4);
    }

    #[test]
    fn stop_at_kills_mid_run() {
        let cfg = SimConfig {
            cpus: 1,
            duration: Duration::from_secs(4),
            ..SimConfig::default()
        };
        let scenario = Scenario::new("stop", cfg)
            .task(TaskSpec::new("t", 1, BehaviorSpec::Inf).stop_at(Time::from_secs(1)));
        let rep = scenario.run(sfs(1));
        let t = rep.task("t").unwrap();
        assert!(t.exited.is_some());
        assert!(t.service <= Duration::from_millis(1010));
    }

    #[test]
    fn builder_composes() {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_secs(1),
            ..SimConfig::default()
        };
        let s = Scenario::new("x", cfg)
            .task(TaskSpec::new("late", 2, BehaviorSpec::Inf).arrive_at(Time::from_millis(500)))
            .stream(
                StreamSpec::new("jobs", 1, BehaviorSpec::Finite(Duration::from_millis(100)))
                    .until(Time::from_secs(1)),
            );
        let rep = s.run(sfs(2));
        let late = rep.task("late").unwrap();
        assert!(late.arrived == Time::from_millis(500));
        assert!(rep.tasks.iter().any(|t| t.name.starts_with("jobs#")));
    }

    #[test]
    fn zero_weight_is_a_typed_error() {
        let cfg = SimConfig {
            cpus: 1,
            duration: Duration::from_millis(10),
            ..SimConfig::default()
        };
        let err = Scenario::new("bad", cfg.clone())
            .task(TaskSpec::new("t", 0, BehaviorSpec::Inf))
            .try_run(sfs(1))
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroTaskWeight { task: "t".into() });
        assert!(err.to_string().contains("zero weight"));

        let err = Scenario::new("bad2", cfg)
            .stream(StreamSpec::new(
                "s",
                0,
                BehaviorSpec::Finite(Duration::from_millis(1)),
            ))
            .try_run(sfs(1))
            .unwrap_err();
        assert_eq!(err, ScenarioError::ZeroStreamWeight { stream: "s".into() });
    }

    #[test]
    fn duplicate_names_are_a_typed_error() {
        let cfg = SimConfig {
            cpus: 1,
            duration: Duration::from_millis(10),
            ..SimConfig::default()
        };
        let err = Scenario::new("dup", cfg.clone())
            .task(TaskSpec::new("t", 1, BehaviorSpec::Inf))
            .task(TaskSpec::new("t", 2, BehaviorSpec::Inf))
            .try_run(sfs(1))
            .unwrap_err();
        assert_eq!(err, ScenarioError::DuplicateTaskName { task: "t".into() });

        // Streams collide with tasks too.
        let err = Scenario::new("dup2", cfg)
            .task(TaskSpec::new("jobs", 1, BehaviorSpec::Inf))
            .stream(StreamSpec::new(
                "jobs",
                1,
                BehaviorSpec::Finite(Duration::from_millis(1)),
            ))
            .try_run(sfs(1))
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::DuplicateTaskName {
                task: "jobs".into()
            }
        );
    }

    #[test]
    fn empty_tenant_is_a_typed_error() {
        let cfg = SimConfig {
            cpus: 1,
            duration: Duration::from_millis(10),
            ..SimConfig::default()
        };
        let err = Scenario::new("empty", cfg)
            .tenant("ghost", [])
            .task(TaskSpec::new("t", 1, BehaviorSpec::Inf))
            .try_run(sfs(1))
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::EmptyTenant {
                tenant: "ghost".into()
            }
        );
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn tenants_bind_to_hierarchical_groups() {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_secs(4),
            ..SimConfig::default()
        };
        let policy: PolicySpec = "sfs:groups(a*3=sfs,b=sfs)".parse().unwrap();
        let rep = Scenario::new("tenants", cfg)
            .tenant(
                "a",
                [TaskSpec::new("a-task", 1, BehaviorSpec::Inf).replicated(2)],
            )
            .tenant(
                "b",
                [TaskSpec::new("b-task", 1, BehaviorSpec::Inf).replicated(2)],
            )
            .run(policy.build(2));
        // Every task carries its tenant in the report.
        for t in &rep.tasks {
            assert!(t.tenant.is_some(), "{} lost its tenant", t.name);
        }
        let shares = rep.tenant_shares();
        assert_eq!(shares.len(), 2);
        // Shares split 3:1 between the two tenants.
        let ratio = shares[0].1 / shares[1].1;
        assert!((ratio - 3.0).abs() < 0.15, "tenant ratio {ratio}");
    }

    #[test]
    fn unknown_tenants_run_tenant_less_under_flat_policies() {
        let cfg = SimConfig {
            cpus: 1,
            duration: Duration::from_millis(100),
            ..SimConfig::default()
        };
        let rep = Scenario::new("flat", cfg)
            .tenant("a", [TaskSpec::new("t", 1, BehaviorSpec::Inf)])
            .run(sfs(1));
        assert_eq!(rep.task("t").unwrap().tenant, None);
        assert!(rep.tenant_shares().is_empty());
    }

    #[test]
    #[should_panic(expected = "zero weight")]
    fn run_panics_on_zero_weight() {
        let cfg = SimConfig {
            cpus: 1,
            duration: Duration::from_millis(10),
            ..SimConfig::default()
        };
        let _ = Scenario::new("bad", cfg)
            .task(TaskSpec::new("t", 0, BehaviorSpec::Inf))
            .run(sfs(1));
    }
}
