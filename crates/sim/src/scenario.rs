//! Declarative experiment descriptions.
//!
//! A [`Scenario`] names a machine, a duration and a set of task specs
//! (plus optional sequential job streams), and can be run under any
//! scheduler factory. The figure harnesses in `sfs-bench` are built out
//! of these, and the integration tests reuse the exact paper scenarios.

use sfs_core::sched::Scheduler;
use sfs_core::task::Weight;
use sfs_core::time::{Duration, Time};
use sfs_workloads::BehaviorSpec;

use crate::engine::{SimConfig, Simulator};
use crate::trace::SimReport;

/// One or more identical tasks in a scenario.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Base name; replicas are suffixed `#k`.
    pub name: String,
    /// Weight for each replica.
    pub weight: u64,
    /// Arrival time.
    pub arrive: Time,
    /// Kill time, if the task should be stopped mid-run.
    pub stop_at: Option<Time>,
    /// The workload.
    pub behavior: BehaviorSpec,
    /// Number of identical replicas (default 1).
    pub count: usize,
}

impl TaskSpec {
    /// A single task arriving at t=0.
    pub fn new(name: &str, weight: u64, behavior: BehaviorSpec) -> TaskSpec {
        TaskSpec {
            name: name.to_string(),
            weight,
            arrive: Time::ZERO,
            stop_at: None,
            behavior,
            count: 1,
        }
    }

    /// Sets the arrival time.
    pub fn arrive_at(mut self, t: Time) -> TaskSpec {
        self.arrive = t;
        self
    }

    /// Sets a kill time.
    pub fn stop_at(mut self, t: Time) -> TaskSpec {
        self.stop_at = Some(t);
        self
    }

    /// Replicates the spec into `n` identical tasks.
    pub fn replicated(mut self, n: usize) -> TaskSpec {
        self.count = n;
        self
    }
}

/// A sequential stream of short jobs (Example 2 / Fig. 5): each job
/// arrives when the previous one finishes.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Name prefix; jobs are suffixed `#n`.
    pub name: String,
    /// Weight of each job.
    pub weight: u64,
    /// First job's arrival.
    pub first: Time,
    /// The per-job workload (typically [`BehaviorSpec::Finite`]).
    pub job: BehaviorSpec,
    /// Gap between a job's exit and the next arrival.
    pub gap: Duration,
    /// No job arrives at or after this instant.
    pub until: Time,
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (for reports).
    pub name: String,
    /// Simulator configuration (machine, duration, sampling).
    pub config: SimConfig,
    /// Long-lived tasks.
    pub tasks: Vec<TaskSpec>,
    /// Sequential job streams.
    pub streams: Vec<StreamSpec>,
}

impl Scenario {
    /// Creates an empty scenario over the given machine config.
    pub fn new(name: &str, config: SimConfig) -> Scenario {
        Scenario {
            name: name.to_string(),
            config,
            tasks: Vec::new(),
            streams: Vec::new(),
        }
    }

    /// Adds a task spec.
    pub fn task(mut self, spec: TaskSpec) -> Scenario {
        self.tasks.push(spec);
        self
    }

    /// Adds a stream spec.
    pub fn stream(mut self, spec: StreamSpec) -> Scenario {
        self.streams.push(spec);
        self
    }

    /// Runs the scenario under the given scheduler.
    ///
    /// # Panics
    ///
    /// Panics if any weight in the scenario is zero.
    pub fn run(&self, sched: Box<dyn Scheduler>) -> SimReport {
        let mut sim = Simulator::new(self.config.clone(), sched);
        for spec in &self.tasks {
            for k in 0..spec.count.max(1) {
                let name = if spec.count > 1 {
                    format!("{}#{}", spec.name, k + 1)
                } else {
                    spec.name.clone()
                };
                let idx = sim.schedule_arrival(
                    spec.arrive,
                    &name,
                    Weight::new(spec.weight).expect("zero weight in scenario"),
                    spec.behavior.clone(),
                );
                if let Some(t) = spec.stop_at {
                    sim.schedule_kill(t, idx);
                }
            }
        }
        for s in &self.streams {
            sim.add_stream(
                s.first,
                &s.name,
                Weight::new(s.weight).expect("zero weight in stream"),
                s.job.clone(),
                s.gap,
                s.until,
            );
        }
        sim.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::sfs::Sfs;

    #[test]
    fn replicated_tasks_get_numbered_names() {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_secs(2),
            ..SimConfig::default()
        };
        let scenario = Scenario::new("repl", cfg)
            .task(TaskSpec::new("solo", 1, BehaviorSpec::Inf))
            .task(TaskSpec::new("bg", 1, BehaviorSpec::Inf).replicated(3));
        let rep = scenario.run(Box::new(Sfs::new(2)));
        assert!(rep.task("solo").is_some());
        assert!(rep.task("bg#1").is_some());
        assert!(rep.task("bg#3").is_some());
        assert!(rep.task("bg").is_none());
        assert_eq!(rep.tasks.len(), 4);
    }

    #[test]
    fn stop_at_kills_mid_run() {
        let cfg = SimConfig {
            cpus: 1,
            duration: Duration::from_secs(4),
            ..SimConfig::default()
        };
        let scenario = Scenario::new("stop", cfg)
            .task(TaskSpec::new("t", 1, BehaviorSpec::Inf).stop_at(Time::from_secs(1)));
        let rep = scenario.run(Box::new(Sfs::new(1)));
        let t = rep.task("t").unwrap();
        assert!(t.exited.is_some());
        assert!(t.service <= Duration::from_millis(1010));
    }

    #[test]
    fn builder_composes() {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_secs(1),
            ..SimConfig::default()
        };
        let s = Scenario::new("x", cfg)
            .task(TaskSpec::new("late", 2, BehaviorSpec::Inf).arrive_at(Time::from_millis(500)))
            .stream(StreamSpec {
                name: "jobs".into(),
                weight: 1,
                first: Time::ZERO,
                job: BehaviorSpec::Finite(Duration::from_millis(100)),
                gap: Duration::ZERO,
                until: Time::from_secs(1),
            });
        let rep = s.run(Box::new(Sfs::new(2)));
        let late = rep.task("late").unwrap();
        assert!(late.arrived == Time::from_millis(500));
        assert!(rep.tasks.iter().any(|t| t.name.starts_with("jobs#")));
    }
}
