//! lmbench-style microbenchmarks over the userspace executor.
//!
//! These regenerate Table 1 and Fig. 7 of the paper:
//!
//! * [`checkpoint_cost`] — the cost of a no-op scheduler entry point
//!   (the userspace analogue of lmbench's null *syscall overhead* row);
//! * [`spawn_cost`] — creating and retiring a task (the *fork/exec*
//!   rows);
//! * [`ctx_switch_latency`] — the yield ping-pong of `lat_ctx`: `n`
//!   tasks on one virtual CPU, each touching a working set of
//!   `wset_kb` KiB between yields, exactly like lmbench's
//!   "N proc / K KB" grid. The per-switch latency includes the
//!   scheduler decision, the park/unpark handoff and the cache effect
//!   of the working set — the same cost components the kernel numbers
//!   had.

use std::time::Instant;

use crossbeam::channel;
use sfs_core::sched::Scheduler;
use sfs_core::task::weight;
use sfs_core::time::Duration;

use crate::executor::{Executor, RtConfig};

fn single_cpu(sched: Box<dyn Scheduler>) -> Executor {
    Executor::new(
        RtConfig {
            cpus: 1,
            // Long timer period: these benches switch via yield, not
            // preemption, so the timer should stay out of the way.
            timer_interval: Duration::from_millis(50),
        },
        sched,
    )
}

/// Average cost of the checkpoint fast path (no preemption pending).
pub fn checkpoint_cost(sched: Box<dyn Scheduler>, iters: u64) -> Duration {
    let ex = single_cpu(sched);
    let (tx, rx) = channel::bounded(1);
    let h = ex.spawn("probe", weight(1), move |ctx| {
        let t0 = Instant::now();
        for _ in 0..iters {
            ctx.checkpoint();
        }
        let per = t0.elapsed().as_nanos() as u64 / iters.max(1);
        let _ = tx.send(per);
    });
    ex.wait();
    h.join();
    Duration::from_nanos(rx.recv().expect("probe died"))
}

/// Average cost of spawning a task and waiting for it to retire.
pub fn spawn_cost(mk_sched: impl Fn() -> Box<dyn Scheduler>, n: u64) -> Duration {
    let ex = single_cpu(mk_sched());
    // Warm up the thread machinery once.
    ex.spawn("warm", weight(1), |_| {}).join();
    let t0 = Instant::now();
    for i in 0..n {
        let h = ex.spawn(&format!("job{i}"), weight(1), |_| {});
        h.join();
    }
    Duration::from_nanos(t0.elapsed().as_nanos() as u64 / n.max(1))
}

/// Per-switch latency of an `n`-task token ring with a `wset_kb` KiB
/// working set per task — the faithful lmbench `lat_ctx` analogue.
///
/// Like `lat_ctx`'s ring of pipes, each task *blocks* until the token
/// reaches it, touches its working set, passes the token on and blocks
/// again, so exactly one task is runnable at any moment and every hop
/// forces a genuine scheduler handoff under any policy (a yield ring
/// would let weight-oblivious policies re-pick the yielder and dodge
/// the switch).
pub fn ctx_switch_latency(
    sched: Box<dyn Scheduler>,
    nprocs: usize,
    wset_kb: usize,
    rounds: u64,
) -> Duration {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    assert!(nprocs >= 2, "need at least two tasks to switch between");
    let ex = single_cpu(sched);
    let tokens: Arc<Vec<AtomicBool>> =
        Arc::new((0..nprocs).map(|_| AtomicBool::new(false)).collect());

    let t0 = Instant::now();
    let handles: Vec<_> = (0..nprocs)
        .map(|i| {
            let tokens = Arc::clone(&tokens);
            ex.spawn(&format!("ring{i}"), weight(1), move |ctx| {
                let next = (i + 1) % tokens.len();
                // Ids are assigned 1..=n in spawn order on this fresh
                // executor; the successor's id is therefore next+1.
                let next_id = sfs_core::task::TaskId(next as u64 + 1);
                let mut buf = vec![0u8; wset_kb * 1024];
                for _ in 0..rounds {
                    ctx.block_on_token(&tokens[i]);
                    // Touch every cache line of the working set, as
                    // lmbench does, so larger sets evict more state.
                    let mut acc = 0u8;
                    let mut j = 0;
                    while j < buf.len() {
                        buf[j] = buf[j].wrapping_add(1);
                        acc ^= buf[j];
                        j += 64;
                    }
                    std::hint::black_box(acc);
                    tokens[next].store(true, Ordering::Release);
                    ctx.wake_task(next_id);
                }
            })
        })
        .collect();
    // Kick the ring off.
    tokens[0].store(true, Ordering::Release);
    ex.wake_task(sfs_core::task::TaskId(1));
    ex.wait();
    let total = t0.elapsed();
    for h in handles {
        h.join();
    }
    let switches = rounds * nprocs as u64;
    Duration::from_nanos(total.as_nanos() as u64 / switches.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::policy::PolicySpec;

    #[test]
    fn checkpoint_fast_path_is_cheap() {
        let cost = checkpoint_cost(PolicySpec::sfs().build(1), 200_000);
        // An atomic load + branch: well under a microsecond.
        assert!(cost < Duration::from_micros(1), "checkpoint cost {cost}");
    }

    #[test]
    fn spawn_cost_is_bounded() {
        let cost = spawn_cost(|| PolicySpec::sfs().build(1), 20);
        // Thread spawn + scheduler attach; generous bound for CI boxes.
        assert!(cost < Duration::from_millis(20), "spawn cost {cost}");
        assert!(cost > Duration::ZERO);
    }

    #[test]
    fn ctx_switch_measurable_for_both_policies() {
        for sched in [
            PolicySpec::sfs().build(1),
            PolicySpec::time_sharing().build(1),
        ] {
            let lat = ctx_switch_latency(sched, 2, 0, 300);
            assert!(lat > Duration::ZERO);
            assert!(lat < Duration::from_millis(5), "latency {lat}");
        }
    }

    #[test]
    fn bigger_working_sets_cost_more() {
        // 64 KB of working set must cost measurably more per switch
        // than 0 KB (cache restoration dominates, §4.5).
        let small = ctx_switch_latency(PolicySpec::sfs().build(1), 2, 0, 300);
        let large = ctx_switch_latency(PolicySpec::sfs().build(1), 2, 64, 300);
        assert!(large > small, "64KB ({large}) should exceed 0KB ({small})");
    }
}
