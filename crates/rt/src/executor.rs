//! A userspace gang scheduler running real OS threads.
//!
//! The executor emulates the paper's kernel environment in user space:
//! `p` *virtual processors* gate which OS threads may run. A task runs
//! only while it holds a virtual CPU; the policy (any
//! [`sfs_core::sched::Scheduler`]) decides who holds one. Preemption is
//! cooperative at *checkpoints*: a timer thread raises a per-task
//! preempt flag when the quantum expires, and the task's next
//! [`TaskCtx::checkpoint`] call enters the scheduler — the userspace
//! analogue of a timer interrupt hitting at the next instruction
//! boundary. Blocking I/O is modelled by [`TaskCtx::block_for`], which
//! releases the virtual CPU for the sleep duration.
//!
//! # Lock structure
//!
//! The machine is split into run-queue *shards* (one by default — the
//! paper's global queue — or per [`PolicySpec`] `shards=N`). Each shard
//! owns a contiguous CPU range, its own policy instance and its own
//! mutex, so quantum expiry, yields and picks on different shards never
//! contend. A single small *global section* serializes only what is
//! inherently machine-wide: task placement on arrival and wakeup, the
//! §2.1 weight readjustment (published to SFS shards through the
//! lock-free epoch snapshot of [`sfs_core::shard`]), and the periodic
//! surplus rebalance that migrates ready tasks off overloaded shards.
//! Lock order is global → shard, shards in ascending index; the hot
//! still-runnable path (checkpoint preemption, yield) takes only its
//! own shard lock.
//!
//! This substrate is what the overhead experiments (Table 1, Fig. 7)
//! and the `repro scale` sweep measure: every scheduler entry takes the
//! same locks and runs the same policy code a kernel implementation
//! would, so the *relative* costs of SFS vs time sharing — and of one
//! global lock vs per-shard locks — are preserved, even though the
//! absolute numbers are userspace numbers.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use parking_lot::Condvar;
use sfs_analyze::lockorder::{lock_pair, rank, OrderedGuard, OrderedMutex};
use sfs_core::admit::{AdmissionControl, AdmissionPolicy, RejectReason};
use sfs_core::policy::PolicySpec;
use sfs_core::sched::{select_preemption_victim, SchedStats, Scheduler, SwitchReason};
use sfs_core::shard::{Balancer, ShardLayout, ShardedScheduler};
use sfs_core::task::{CpuId, TaskId, TenantId, Weight};
use sfs_core::time::{Duration, Time};
use sfs_trace::{CounterTrack, MigrateKind, TraceEvent, TraceRecorder};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Number of virtual processors.
    pub cpus: u32,
    /// How often the timer thread scans for expired quanta.
    pub timer_interval: Duration,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            cpus: 2,
            timer_interval: Duration::from_millis(1),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CpuSlot {
    current: Option<TaskId>,
    dispatched_at: Instant,
    slice: Duration,
    /// The task this CPU most recently ran — `switches` counts only
    /// grants to a *different* task, matching the sim's definition of a
    /// context switch (idle gaps do not reset the memory).
    last_task: Option<TaskId>,
}

struct RtTask {
    id: TaskId,
    name: String,
    /// Tenant group the task attached under (admission buckets and
    /// hierarchical accounting).
    tenant: Option<TenantId>,
    /// The task holds an admission slot that must be released on exit.
    admitted: bool,
    /// The shard this task currently belongs to. Running and blocked
    /// tasks are never migrated, so a task reading its own index while
    /// it holds (or is about to re-check) a CPU sees a stable value;
    /// ready tasks are migrated only under both shard locks.
    shard: AtomicUsize,
    /// Raised by the timer thread or a wakeup preemption; consumed at
    /// the next checkpoint.
    preempt: AtomicBool,
    /// Total CPU service in nanoseconds.
    service_ns: AtomicU64,
    /// "You hold a virtual CPU" flag, guarded by its own mutex so a
    /// parked thread can wait on it without any scheduler lock. Rank
    /// `granted` sits below every scheduler lock: grant/revoke happen
    /// while a shard (and possibly the global) lock is held.
    granted: OrderedMutex<bool>,
    cv: Condvar,
}

impl RtTask {
    fn grant(&self) {
        let mut g = self.granted.lock();
        *g = true;
        self.cv.notify_one();
    }

    fn wait_granted(&self) {
        let mut g = self.granted.lock();
        while !*g {
            g.wait(&self.cv);
        }
    }

    fn revoke(&self) {
        *self.granted.lock() = false;
    }
}

/// One run-queue shard: a policy instance over a contiguous CPU range,
/// behind its own mutex.
struct ShardCore {
    /// This shard's index (for heartbeat and watchdog accounting).
    index: usize,
    sched: Box<dyn Scheduler>,
    /// Local CPU slots; machine CPU id = `cpu_base + local index`.
    cpus: Vec<CpuSlot>,
    /// First machine-wide CPU id of this shard (trace events report
    /// machine ids, not shard-local slots).
    cpu_base: u32,
    tasks: HashMap<TaskId, Arc<RtTask>>,
    /// Tasks currently blocked in this shard (event or timed sleep).
    /// With a balancer present, mutations additionally require the
    /// global lock, so wake/placement decisions are race-free.
    blocked: HashSet<TaskId>,
    switches: u64,
}

impl ShardCore {
    fn task(&self, id: TaskId) -> &Arc<RtTask> {
        // invariant: ids come from this shard's own slots/queues, and
        // task-map transfer happens under both shard locks.
        self.tasks.get(&id).expect("unknown task id")
    }

    fn slot_of(&self, id: TaskId) -> Option<usize> {
        self.cpus.iter().position(|c| c.current == Some(id))
    }
}

/// The global section: placement, machine-wide readjustment and task
/// lifetime accounting. Deliberately small — the pick/requeue hot path
/// never touches it.
struct Global {
    /// Placement + global feasibility; `None` for a single shard.
    bal: Option<Balancer>,
    /// Machine-wide task registry, so wake-by-id resolves with one
    /// global probe instead of scanning every shard's lock.
    registry: HashMap<TaskId, Arc<RtTask>>,
    next_id: u64,
    live: usize,
    /// Admission control state (a spec's `admit(...)` clause), or
    /// `None` to admit everything.
    admit: Option<AdmissionControl>,
}

struct Inner {
    cfg: RtConfig,
    /// Rank `shard.i`: acquired after `global`, in ascending index
    /// order (see [`sfs_analyze::lockorder::rank`]).
    shards: Vec<OrderedMutex<ShardCore>>,
    /// Rank `global`: above every shard lock — placement, readjustment
    /// and rebalance take it first.
    global: OrderedMutex<Global>,
    /// Interval of the timer thread's rebalance pass (sharded only).
    rebalance_every: Duration,
    idle_cv: Condvar,
    epoch: Instant,
    shutdown: AtomicBool,
    stop_requested: AtomicBool,
    steals: AtomicU64,
    rebalances: AtomicU64,
    wake_migrations: AtomicU64,
    /// Per-shard scheduler-progress counters (bumped on every grant and
    /// every stop): the watchdog's heartbeat. A shard whose heartbeat
    /// does not move while work is waiting is stalled.
    heartbeats: Vec<AtomicU64>,
    /// Injected extra delay (ns) consumed by the timer thread's next
    /// tick — deterministic timer-jitter fault injection.
    timer_jitter: AtomicU64,
    /// Task bodies that panicked and were forcibly reaped.
    reaped: AtomicU64,
    /// Watchdog activations (stalled-shard recoveries).
    watchdogs: AtomicU64,
    /// Scheduler invariant checks that failed during panic recovery.
    invariant_violations: AtomicU64,
    /// Event recorder; off by default, so every hook below is a single
    /// relaxed atomic load on the hot path.
    trace: TraceRecorder,
}

impl Inner {
    fn now(&self) -> Time {
        Time(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn sharded(&self) -> bool {
        self.shards.len() > 1
    }

    /// Locks the shard a task currently belongs to, revalidating the
    /// index after acquisition (a ready task may migrate between the
    /// load and the lock).
    fn lock_own_shard(&self, task: &RtTask) -> (usize, OrderedGuard<'_, ShardCore>) {
        loop {
            let s = task.shard.load(Ordering::Acquire);
            let guard = self.shards[s].lock();
            if task.shard.load(Ordering::Acquire) == s {
                return (s, guard);
            }
        }
    }

    /// Locks two distinct shards in index order, returning the guards
    /// in argument order — [`lock_pair`] enforces the rank discipline
    /// (and audits it under `lock-audit`).
    fn lock_two(
        &self,
        a: usize,
        b: usize,
    ) -> (OrderedGuard<'_, ShardCore>, OrderedGuard<'_, ShardCore>) {
        assert_ne!(a, b, "locking one shard twice");
        lock_pair(&self.shards[a], &self.shards[b])
    }

    /// Fills idle virtual CPUs of one shard. Caller holds its lock.
    fn dispatch(&self, core: &mut ShardCore) {
        let now = self.now();
        for i in 0..core.cpus.len() {
            if core.cpus[i].current.is_some() {
                continue;
            }
            let Some(next) = core.sched.pick_next(CpuId(i as u32), now) else {
                continue;
            };
            let slice = core.sched.time_slice(next);
            let switching = core.cpus[i].last_task != Some(next);
            if switching {
                core.switches += 1;
            }
            if self.trace.on() {
                let t = self.now().as_nanos();
                let cpu = core.cpu_base + i as u32;
                if switching {
                    self.trace.emit(TraceEvent::CtxSwitch {
                        t,
                        cpu,
                        from: core.cpus[i].last_task,
                        to: next,
                    });
                }
                self.trace
                    .emit(TraceEvent::SliceBegin { t, cpu, task: next });
            }
            core.cpus[i] = CpuSlot {
                current: Some(next),
                dispatched_at: Instant::now(),
                slice,
                last_task: Some(next),
            };
            // relaxed: monotonic progress beacon; the watchdog only
            // compares successive reads of the same counter.
            self.heartbeats[core.index].fetch_add(1, Ordering::Relaxed);
            let task = core.task(next).clone();
            task.preempt.store(false, Ordering::Release);
            task.grant();
        }
    }

    /// Removes `id` from its virtual CPU, charging actual usage.
    /// Caller holds the shard lock (and the global lock when the
    /// reason leaves the runnable set and a balancer exists — the
    /// caller also updates the balancer).
    fn stop_running(&self, core: &mut ShardCore, id: TaskId, reason: SwitchReason) {
        // invariant: every caller either found `id` on a CPU under
        // this same lock or holds the slot it granted it.
        let slot = core.slot_of(id).expect("task not on any cpu");
        let used = Duration::from_std(core.cpus[slot].dispatched_at.elapsed());
        core.cpus[slot].current = None;
        let task = core.task(id).clone();
        task.service_ns
            .fetch_add(used.as_nanos(), Ordering::Relaxed); // relaxed: stats accumulator; readers only need a recent total
        task.revoke();
        if reason == SwitchReason::Blocked {
            core.blocked.insert(id);
        }
        let now = self.now();
        core.sched.put_prev(id, used, reason, now);
        // relaxed: monotonic progress beacon; the watchdog only
        // compares successive reads of the same counter.
        self.heartbeats[core.index].fetch_add(1, Ordering::Relaxed);
        if self.trace.on() {
            let t = now.as_nanos();
            self.trace.emit(TraceEvent::SliceEnd {
                t,
                cpu: core.cpu_base + slot as u32,
                task: id,
                reason,
            });
            if let Some(tenant) = core.sched.tenant_of(id) {
                self.trace.add_tenant_service(t, tenant, used.as_nanos());
            }
        }
    }

    /// If `woken` did not get a CPU, flags the *worst* eligible running
    /// task of this shard for preemption: among every CPU whose running
    /// task loses to the woken one, the one with the largest charged
    /// surplus (the old code flagged the first eligible CPU, evicting
    /// near-ties while far-worse tasks kept running).
    fn flag_wake_preemption(&self, core: &ShardCore, woken: TaskId) {
        if core.slot_of(woken).is_some() {
            return;
        }
        let now = self.now();
        let candidates: Vec<(usize, TaskId, Duration)> = core
            .cpus
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.current
                    .map(|id| (i, id, Duration::from_std(slot.dispatched_at.elapsed())))
            })
            .collect();
        if let Some((slot, victim)) =
            select_preemption_victim(core.sched.as_ref(), woken, &candidates, now)
        {
            if self.trace.on() {
                self.trace.emit(TraceEvent::PreemptEvict {
                    t: now.as_nanos(),
                    cpu: core.cpu_base + slot as u32,
                    victim,
                    by: woken,
                });
            }
            core.task(victim).preempt.store(true, Ordering::Release);
        }
    }

    /// Moves a ready (or still-blocked, at wake migration) task between
    /// two locked shards: policy detach/attach, task-map transfer, and
    /// the task's shard index. Balancer accounting is the caller's
    /// (steals call [`Balancer::migrate`]; wake placement was already
    /// accounted by [`Balancer::wake`]).
    fn move_task_locked(
        &self,
        from: &mut ShardCore,
        to_idx: usize,
        to: &mut ShardCore,
        id: TaskId,
    ) {
        let now = self.now();
        // invariant: migration candidates come from `from`'s own
        // policy under its lock; attach/detach and the task map move
        // together under both shard locks.
        let w = from.sched.weight_of(id).expect("migrating stranger");
        from.sched.detach(id, now);
        let arc = from.tasks.remove(&id).expect("task map out of sync"); // invariant: same lock scope as above
        arc.shard.store(to_idx, Ordering::Release);
        to.tasks.insert(id, arc);
        to.sched.attach(id, w, now);
    }

    /// Steal-on-idle (sharded only; caller holds the global lock):
    /// after a blocking or exit event leaves shard `s` with an idle
    /// CPU, pull the highest-surplus ready task from the most loaded
    /// shard that can spare one — the same cross-shard work
    /// conservation the sim substrate's `ShardedScheduler::pick_next`
    /// has, without waiting for the next periodic rebalance tick.
    fn steal_on_idle(&self, global: &mut Global, s: usize) {
        let Some(bal) = global.bal.as_mut() else {
            return;
        };
        let mut donors: Vec<usize> = (0..self.shards.len()).filter(|&o| o != s).collect();
        donors.sort_by_key(|&o| std::cmp::Reverse(bal.load(o)));
        for o in donors {
            let (mut f, mut t) = self.lock_two(o, s);
            if t.cpus.iter().all(|c| c.current.is_some()) {
                return; // the idle CPU was filled in the meantime
            }
            // Never drain a shard below its own processor count.
            if f.sched.nr_runnable() <= f.cpus.len() {
                continue;
            }
            let Some(id) = f.sched.steal_candidate() else {
                continue;
            };
            if bal.tenant_of(id).is_some() {
                // Tenant groups place as units; stealing one member
                // would split the group across shards.
                continue;
            }
            bal.migrate(id, s);
            self.move_task_locked(&mut f, s, &mut t, id);
            drop(f);
            if self.trace.on() {
                self.trace.emit(TraceEvent::Migrate {
                    t: self.now().as_nanos(),
                    task: id,
                    from_shard: o as u32,
                    to_shard: s as u32,
                    kind: MigrateKind::Steal,
                });
            }
            self.dispatch(&mut t);
            self.flag_wake_preemption(&t, id);
            self.steals.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            return;
        }
    }

    /// Blocks the calling task: releases its CPU, records it blocked,
    /// and (when sharded) removes it from the global runnable set and
    /// offers the freed CPU a stolen task. The caller parks on
    /// `wait_granted` afterwards.
    fn block_current(&self, task: &Arc<RtTask>) {
        let mut global = self.sharded().then(|| self.global.lock());
        let (s, mut core) = self.lock_own_shard(task);
        self.stop_running(&mut core, task.id, SwitchReason::Blocked);
        if let Some(bal) = global.as_mut().and_then(|g| g.bal.as_mut()) {
            bal.block(task.id);
        }
        self.dispatch(&mut core);
        let idle = core.cpus.iter().any(|c| c.current.is_none());
        drop(core);
        if idle {
            if let Some(g) = global.as_mut() {
                self.steal_on_idle(g, s);
            }
        }
    }

    /// Wakes a blocked task, letting the balancer place it (sticky to
    /// its home shard unless that shard is overloaded). Returns `false`
    /// if the task was not blocked.
    fn wake_blocked(&self, task: &Arc<RtTask>) -> bool {
        let now = self.now();
        if !self.sharded() {
            let mut core = self.shards[0].lock();
            if !core.blocked.remove(&task.id) {
                return false;
            }
            core.sched.wake(task.id, now);
            if self.trace.on() {
                self.trace.emit(TraceEvent::Wake {
                    t: now.as_nanos(),
                    task: task.id,
                });
            }
            self.dispatch(&mut core);
            self.flag_wake_preemption(&core, task.id);
            return true;
        }
        let mut global = self.global.lock();
        // Blocked tasks never migrate, so the home index is stable
        // while we hold the global lock (all blocked-set transitions
        // take it too).
        let home = task.shard.load(Ordering::Acquire);
        {
            let core = self.shards[home].lock();
            if !core.blocked.contains(&task.id) {
                return false;
            }
        }
        // invariant: sharded() was true above, and sharded executors
        // are always constructed with a balancer (from_parts).
        let bal = global.bal.as_mut().expect("sharded executor has balancer");
        let (_, target) = bal.wake(task.id);
        if self.trace.on() {
            self.trace.emit(TraceEvent::Wake {
                t: now.as_nanos(),
                task: task.id,
            });
            if target != home {
                self.trace.emit(TraceEvent::Migrate {
                    t: now.as_nanos(),
                    task: task.id,
                    from_shard: home as u32,
                    to_shard: target as u32,
                    kind: MigrateKind::Wake,
                });
            }
        }
        if target == home {
            let mut core = self.shards[home].lock();
            core.blocked.remove(&task.id);
            core.sched.wake(task.id, now);
            self.dispatch(&mut core);
            self.flag_wake_preemption(&core, task.id);
        } else {
            // Overloaded home shard: re-admit the waker on the target
            // shard instead (fresh tags there, like any migration).
            // `Balancer::wake` already accounted the placement.
            self.wake_migrations.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
            let (mut from, mut to) = self.lock_two(home, target);
            from.blocked.remove(&task.id);
            self.move_task_locked(&mut from, target, &mut to, task.id);
            drop(from);
            self.dispatch(&mut to);
            self.flag_wake_preemption(&to, task.id);
        }
        true
    }

    /// One surplus-rebalance pass (timer thread, sharded only):
    /// migrate highest-surplus ready tasks from overloaded to
    /// underloaded shards while each move strictly reduces the worse
    /// per-CPU load. The move decision itself is
    /// [`Balancer::plan_move`], shared with the sim substrate, so the
    /// rebalance invariant has exactly one implementation.
    fn rebalance(&self) {
        let mut global = self.global.lock();
        let Some(bal) = global.bal.as_mut() else {
            return;
        };
        for _ in 0..self.shards.len() * 2 {
            let Some((from, to)) = bal.imbalanced_pair() else {
                break;
            };
            let (mut f, mut t) = self.lock_two(from, to);
            // Loads cannot change while we hold the global lock, so
            // the planner re-derives the same pair; the donor's
            // runnable count and candidate are read under its lock.
            let Some((id, pf, pt)) = bal.plan_move(
                |_| f.sched.nr_runnable() > f.cpus.len(),
                |_| f.sched.steal_candidate(),
            ) else {
                break;
            };
            debug_assert_eq!((pf, pt), (from, to), "loads moved under the global lock");
            bal.migrate(id, to);
            self.move_task_locked(&mut f, to, &mut t, id);
            drop(f);
            if self.trace.on() {
                self.trace.emit(TraceEvent::Migrate {
                    t: self.now().as_nanos(),
                    task: id,
                    from_shard: from as u32,
                    to_shard: to as u32,
                    kind: MigrateKind::Rebalance,
                });
            }
            self.dispatch(&mut t);
            self.rebalances.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
        }
    }
}

/// A handle to a spawned task, returned by [`Executor::spawn`].
pub struct TaskHandle {
    id: TaskId,
    task: Arc<RtTask>,
    thread: Option<thread::JoinHandle<()>>,
}

impl TaskHandle {
    /// The task's id in the scheduler.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Total CPU service (virtual-CPU hold time) so far.
    pub fn service(&self) -> Duration {
        // relaxed: stats read; joiners get exactness from thread join.
        Duration::from_nanos(self.task.service_ns.load(Ordering::Relaxed))
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.task.name
    }

    /// Waits for the task's thread to finish.
    pub fn join(mut self) {
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }

    /// Waits for the task's thread to finish — including the scheduler
    /// bookkeeping that charges its final quantum — and returns the
    /// task's total CPU service.
    pub fn join_service(mut self) -> Duration {
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
        // relaxed: stats read; joiners get exactness from thread join.
        Duration::from_nanos(self.task.service_ns.load(Ordering::Relaxed))
    }
}

/// Context passed to every task body.
pub struct TaskCtx {
    inner: Arc<Inner>,
    task: Arc<RtTask>,
}

impl TaskCtx {
    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.task.id
    }

    /// True once [`Executor::stop`] has been called; loops should exit.
    pub fn stopped(&self) -> bool {
        // relaxed: cooperative flag polled in a loop; stop() also
        // raises preempt flags under locks, which bounds the lag.
        self.inner.stop_requested.load(Ordering::Relaxed)
    }

    /// A preemption point: nearly free unless the quantum has expired,
    /// in which case the thread re-enters the scheduler and may hand its
    /// virtual CPU to another task.
    #[inline]
    pub fn checkpoint(&self) {
        if self.task.preempt.load(Ordering::Acquire) {
            self.reschedule(SwitchReason::Preempted);
        }
    }

    /// Voluntarily yields the virtual CPU (remains runnable).
    pub fn yield_now(&self) {
        self.reschedule(SwitchReason::Yielded);
    }

    /// The still-runnable requeue path: only this task's shard lock is
    /// taken — with per-shard locks, quantum expiry on one shard never
    /// contends with another shard's.
    fn reschedule(&self, reason: SwitchReason) {
        {
            let (_, mut core) = self.inner.lock_own_shard(&self.task);
            // The flag may be stale (e.g. raised just as we blocked and
            // got re-granted); only act when we actually hold a CPU.
            if core.slot_of(self.task.id).is_none() {
                self.task.preempt.store(false, Ordering::Release);
                return;
            }
            self.inner.stop_running(&mut core, self.task.id, reason);
            self.inner.dispatch(&mut core);
        }
        self.task.wait_granted();
    }

    /// Event blocking: atomically consumes `token` if set, otherwise
    /// blocks (releases the virtual CPU) until another task sets the
    /// token and calls [`TaskCtx::wake_task`]. Returns once the token
    /// has been consumed.
    ///
    /// Token inspection happens under the scheduler locks on both the
    /// consumer and producer sides, so no wakeup can be lost. This is
    /// the substrate for pipe-style handoffs (the lmbench `lat_ctx`
    /// analogue in [`crate::microbench`]).
    pub fn block_on_token(&self, token: &AtomicBool) {
        loop {
            // Fast path: a token set before we got here is consumed
            // without touching any scheduler lock (the early return
            // never blocks, so no wakeup can be lost).
            if token.swap(false, Ordering::AcqRel) {
                return;
            }
            {
                let mut global = self.inner.sharded().then(|| self.inner.global.lock());
                let (s, mut core) = self.inner.lock_own_shard(&self.task);
                // Re-check under the locks: the producer sets the
                // token before taking them on its wake path.
                if token.swap(false, Ordering::AcqRel) {
                    return;
                }
                // relaxed: stop is re-checked under the scheduler
                // locks; worst case is one extra block/wake cycle.
                if self.inner.stop_requested.load(Ordering::Relaxed) {
                    return;
                }
                self.inner
                    .stop_running(&mut core, self.task.id, SwitchReason::Blocked);
                if let Some(bal) = global.as_mut().and_then(|g| g.bal.as_mut()) {
                    bal.block(self.task.id);
                }
                self.inner.dispatch(&mut core);
                let idle = core.cpus.iter().any(|c| c.current.is_none());
                drop(core);
                if idle {
                    if let Some(g) = global.as_mut() {
                        self.inner.steal_on_idle(g, s);
                    }
                }
            }
            self.task.wait_granted();
        }
    }

    /// Wakes a task blocked via [`TaskCtx::block_on_token`] (or any
    /// blocked task). Returns `true` if the task was blocked. The
    /// producer must set its token *before* calling this.
    pub fn wake_task(&self, id: TaskId) -> bool {
        let Some(task) = self.inner.find_task(id) else {
            return false;
        };
        self.inner.wake_blocked(&task)
    }

    /// Blocks (releases the virtual CPU) for the given duration — the
    /// userspace analogue of sleeping on I/O.
    pub fn block_for(&self, d: Duration) {
        self.inner.block_current(&self.task);
        thread::sleep(d.to_std());
        // `stop()` or `wake_task` may have woken us already; only
        // report the wakeup if we are still blocked.
        self.inner.wake_blocked(&self.task);
        self.task.wait_granted();
    }
}

impl Inner {
    /// Looks a task up by id (wake-by-id API): one global-registry
    /// probe instead of scanning every shard's lock.
    fn find_task(&self, id: TaskId) -> Option<Arc<RtTask>> {
        self.global.lock().registry.get(&id).cloned()
    }
}

/// The userspace executor: `p` virtual CPUs multiplexed over real
/// threads by one or more `sfs-core` scheduling policy shards.
pub struct Executor {
    inner: Arc<Inner>,
    timer: Option<thread::JoinHandle<()>>,
}

impl Executor {
    /// Creates an executor over a single (global run queue) policy.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler's CPU count differs from the config's.
    pub fn new(cfg: RtConfig, sched: Box<dyn Scheduler>) -> Executor {
        Executor::new_traced(cfg, sched, TraceRecorder::off())
    }

    /// [`Executor::new`] with an event recorder: every dispatch, slice,
    /// wake, preemption and migration of the run is emitted into `rec`
    /// (see the `sfs-trace` crate). Keep a clone of the recorder and
    /// call `finish()` after the run to collect the trace.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler's CPU count differs from the config's.
    pub fn new_traced(cfg: RtConfig, sched: Box<dyn Scheduler>, rec: TraceRecorder) -> Executor {
        assert_eq!(sched.cpus(), cfg.cpus, "scheduler/machine mismatch");
        let layout = ShardLayout::new(cfg.cpus, 1);
        Executor::from_parts(cfg, layout, vec![sched], None, None, None, rec)
    }

    /// Creates an executor from a policy spec, honouring its `shards=N`
    /// option: the machine is split into per-shard policy instances
    /// behind per-shard locks, with the balancer in the global section
    /// and a periodic surplus rebalance on the timer thread. Unsharded
    /// specs behave exactly like [`Executor::new`].
    pub fn from_spec(cfg: RtConfig, spec: &PolicySpec) -> Executor {
        Executor::from_spec_traced(cfg, spec, TraceRecorder::off())
    }

    /// [`Executor::from_spec`] with an event recorder (see
    /// [`Executor::new_traced`]).
    pub fn from_spec_traced(cfg: RtConfig, spec: &PolicySpec, rec: TraceRecorder) -> Executor {
        let admit = spec.admission().copied();
        if spec.shard_count() <= 1 {
            // `spec.build` keeps the scheduler identical to the sim
            // substrate's — for `shards=1` that is the one-shard
            // wrapper (named e.g. "SFS(sharded)"), behind one lock.
            let sched = spec.build(cfg.cpus);
            assert_eq!(sched.cpus(), cfg.cpus, "scheduler/machine mismatch");
            let layout = ShardLayout::new(cfg.cpus, 1);
            return Executor::from_parts(cfg, layout, vec![sched], None, None, admit, rec);
        }
        let rebalance = spec.rebalance_every();
        let sharded = ShardedScheduler::build(
            &spec.without_sharding(),
            spec.shard_count(),
            cfg.cpus,
            rebalance,
        );
        let (layout, shards, bal) = sharded.into_parts();
        Executor::from_parts(cfg, layout, shards, Some(bal), rebalance, admit, rec)
    }

    fn from_parts(
        cfg: RtConfig,
        layout: ShardLayout,
        shards: Vec<Box<dyn Scheduler>>,
        bal: Option<Balancer>,
        rebalance: Option<Duration>,
        admit: Option<AdmissionPolicy>,
        trace: TraceRecorder,
    ) -> Executor {
        let mut cpu_base = 0u32;
        let shard_count = shards.len();
        let cores: Vec<OrderedMutex<ShardCore>> = shards
            .into_iter()
            .enumerate()
            .map(|(s, sched)| {
                let base = cpu_base;
                cpu_base += layout.shard_cpus(s);
                OrderedMutex::new(
                    rank::shard(s),
                    ShardCore {
                        index: s,
                        sched,
                        cpus: vec![
                            CpuSlot {
                                current: None,
                                dispatched_at: Instant::now(),
                                slice: Duration::ZERO,
                                last_task: None,
                            };
                            layout.shard_cpus(s) as usize
                        ],
                        cpu_base: base,
                        tasks: HashMap::new(),
                        blocked: HashSet::new(),
                        switches: 0,
                    },
                )
            })
            .collect();
        let inner = Arc::new(Inner {
            cfg,
            shards: cores,
            global: OrderedMutex::new(
                rank::GLOBAL,
                Global {
                    bal,
                    registry: HashMap::new(),
                    next_id: 1,
                    live: 0,
                    admit: admit.map(AdmissionControl::new),
                },
            ),
            rebalance_every: rebalance.unwrap_or(ShardedScheduler::DEFAULT_REBALANCE),
            idle_cv: Condvar::new(),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            stop_requested: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            wake_migrations: AtomicU64::new(0),
            heartbeats: (0..shard_count).map(|_| AtomicU64::new(0)).collect(),
            timer_jitter: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            watchdogs: AtomicU64::new(0),
            invariant_violations: AtomicU64::new(0),
            trace,
        });
        let timer = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("sfs-rt-timer".into())
                .spawn(move || Executor::timer_loop(&inner))
                .expect("spawning timer thread") // invariant: construction-time, not hot path; OS thread-spawn failure is fatal
        };
        Executor {
            inner,
            timer: Some(timer),
        }
    }

    /// The quantum-expiry timer. Two properties matter here:
    ///
    /// * **Absolute deadlines.** The loop sleeps until `next` and then
    ///   advances it by exactly one interval, so lock-hold and wake
    ///   latency do not accumulate as tick drift (the old relative
    ///   `sleep(interval)` pushed every subsequent tick late by the
    ///   scan time). If a scan overruns a whole interval the schedule
    ///   skips forward instead of bursting catch-up ticks.
    /// * **Flags set outside the lock.** Each shard's slots are
    ///   snapshot under its lock; the preempt flags are raised after
    ///   release, so a task re-entering the scheduler never contends
    ///   with the timer holding its shard lock across the full scan.
    fn timer_loop(inner: &Inner) {
        let interval = inner.cfg.timer_interval.to_std();
        let rebalance_every = inner.rebalance_every.to_std();
        let mut next = Instant::now() + interval;
        let mut next_rebalance = Instant::now() + rebalance_every;
        let mut last_readjust = (0u64, 0u64);
        // Watchdog state: the heartbeat value last seen per shard, and
        // how many consecutive ticks it has sat still with work waiting.
        let mut wd_seen: Vec<u64> = vec![0; inner.shards.len()];
        let mut wd_stale: Vec<u32> = vec![0; inner.shards.len()];
        while !inner.shutdown.load(Ordering::Acquire) {
            let now = Instant::now();
            if next > now {
                thread::sleep(next - now);
            }
            // Injected timer jitter: delay this tick (and only this
            // tick) by the injected amount, so quantum expiry is
            // observed late — the fault the watchdog must survive.
            let jitter = inner.timer_jitter.swap(0, Ordering::AcqRel);
            if jitter > 0 {
                thread::sleep(std::time::Duration::from_nanos(jitter));
            }
            next += interval;
            let now = Instant::now();
            if next < now {
                next = now + interval;
            }
            let tracing = inner.trace.on();
            let mut runnable = 0usize;
            let mut readjust = (0u64, 0u64);
            let mut max_surplus: Option<f64> = None;
            let mut min_phi: Option<f64> = None;
            let mut expired: Vec<Arc<RtTask>> = Vec::new();
            for (si, shard) in inner.shards.iter().enumerate() {
                let occupied;
                let waiting;
                {
                    let wait_start = Instant::now();
                    let core = shard.lock();
                    occupied = core.cpus.iter().filter(|c| c.current.is_some()).count();
                    waiting = core.sched.nr_runnable() > 0;
                    if tracing {
                        let t = inner.now().as_nanos();
                        inner.trace.emit(TraceEvent::Counter {
                            t,
                            track: CounterTrack::LockWaitNs,
                            value: wait_start.elapsed().as_nanos() as f64,
                        });
                        runnable += core.sched.nr_runnable();
                        let stats = core.sched.stats();
                        readjust.0 += stats.readjust_calls;
                        readjust.1 += stats.weights_clamped;
                        if si == 0 {
                            if let Some(v) = core.sched.virtual_time() {
                                inner.trace.emit(TraceEvent::Counter {
                                    t,
                                    track: CounterTrack::VirtualTime,
                                    value: v.to_f64(),
                                });
                            }
                        }
                    }
                    for slot in &core.cpus {
                        let Some(id) = slot.current else { continue };
                        let ran = Duration::from_std(slot.dispatched_at.elapsed());
                        if tracing {
                            // Worst running surplus / smallest running φ
                            // across every shard's occupied slots, the
                            // same §2.2 picture the simulator samples.
                            let rt_now = inner.now();
                            if let Some(s) = core.sched.charged_surplus(id, ran, rt_now) {
                                let s = s.to_f64();
                                max_surplus = Some(max_surplus.map_or(s, |m| m.max(s)));
                            }
                            if let Some(phi) = core.sched.adjusted_weight_of(id) {
                                let phi = phi.to_f64();
                                min_phi = Some(min_phi.map_or(phi, |m| m.min(phi)));
                            }
                        }
                        if ran >= slot.slice {
                            expired.push(Arc::clone(core.task(id)));
                        }
                    }
                }
                // Shard lock released: raise the flags outside it.
                let expired_count = expired.len();
                for t in expired.drain(..) {
                    t.preempt.store(true, Ordering::Release);
                }
                // Watchdog: a shard is stalled when every occupied slot
                // has overshot its quantum, other tasks are waiting, and
                // the dispatch heartbeat has not moved since the last
                // tick — i.e. preemption flags are being raised but
                // nothing is yielding. After `WATCHDOG_TICKS` such ticks
                // we re-raise every flag and force a rebalance so the
                // stalled work can be pulled elsewhere.
                const WATCHDOG_TICKS: u32 = 8;
                // relaxed: same-location reads are coherent, so the
                // tick-over-tick comparison below never runs backwards.
                let hb = inner.heartbeats[si].load(Ordering::Relaxed);
                let stalled =
                    occupied > 0 && expired_count == occupied && waiting && hb == wd_seen[si];
                wd_seen[si] = hb;
                wd_stale[si] = if stalled { wd_stale[si] + 1 } else { 0 };
                if wd_stale[si] >= WATCHDOG_TICKS {
                    wd_stale[si] = 0;
                    inner.watchdogs.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
                    if tracing {
                        inner.trace.emit(TraceEvent::WatchdogFired {
                            t: inner.now().as_nanos(),
                            shard: si as u32,
                        });
                    }
                    let flagged: Vec<Arc<RtTask>> = {
                        let core = shard.lock();
                        core.cpus
                            .iter()
                            .filter_map(|c| c.current)
                            .map(|id| Arc::clone(core.task(id)))
                            .collect()
                    };
                    for t in flagged {
                        t.preempt.store(true, Ordering::Release);
                    }
                    if inner.sharded() {
                        inner.rebalance();
                    }
                }
            }
            if tracing {
                let t = inner.now().as_nanos();
                inner.trace.emit(TraceEvent::Counter {
                    t,
                    track: CounterTrack::Runnable,
                    value: runnable as f64,
                });
                if let Some(value) = max_surplus {
                    inner.trace.emit(TraceEvent::Counter {
                        t,
                        track: CounterTrack::MaxRunSurplus,
                        value,
                    });
                }
                if let Some(value) = min_phi {
                    inner.trace.emit(TraceEvent::Counter {
                        t,
                        track: CounterTrack::MinRunPhi,
                        value,
                    });
                }
                if readjust != last_readjust {
                    inner.trace.emit(TraceEvent::Readjust {
                        t,
                        calls: readjust.0.saturating_sub(last_readjust.0),
                        clamped: readjust.1.saturating_sub(last_readjust.1),
                    });
                    last_readjust = readjust;
                }
            }
            if inner.sharded() && Instant::now() >= next_rebalance {
                next_rebalance = Instant::now() + rebalance_every;
                inner.rebalance();
            }
        }
    }

    /// Resolves a tenant group name (from a policy's `groups(...)`
    /// clause) to the id [`Executor::spawn_in_tenant`] takes. Returns
    /// `None` when the policy is flat or the name is unknown.
    pub fn bind_tenant(&self, group: &str) -> Option<TenantId> {
        self.inner.shards[0].lock().sched.bind_tenant(group)
    }

    /// Spawns a task with a weight; the body receives a [`TaskCtx`] and
    /// must call [`TaskCtx::checkpoint`] regularly. The task is placed
    /// on the shard with the least adjusted-weight load per CPU.
    pub fn spawn<F>(&self, name: &str, weight: Weight, body: F) -> TaskHandle
    where
        F: FnOnce(&TaskCtx) + Send + 'static,
    {
        self.spawn_in_tenant(name, weight, None, body)
    }

    /// [`Executor::spawn`] under a tenant group: the task attaches via
    /// [`Scheduler::attach_tenant`] so hierarchical policies account it
    /// to that group, and sharded executors anchor the whole tenant to
    /// one shard (members never split across shards).
    pub fn spawn_in_tenant<F>(
        &self,
        name: &str,
        weight: Weight,
        tenant: Option<TenantId>,
        body: F,
    ) -> TaskHandle
    where
        F: FnOnce(&TaskCtx) + Send + 'static,
    {
        match self.try_spawn_in_tenant(name, weight, tenant, body) {
            Ok(handle) => handle,
            Err(reason) => panic!(
                "task {name:?} rejected by admission control ({reason}); \
                 use try_spawn_in_tenant to handle rejection"
            ),
        }
    }

    /// [`Executor::spawn_in_tenant`], but admission-checked: when the
    /// executor was built from a policy with an `admit(...)` clause the
    /// task may be refused (tenant cap, rate limit, or global load
    /// shed). A rejected task never attaches, never starts a thread,
    /// and consumes no weight; the caller gets the typed
    /// [`RejectReason`]. Without an admission policy this always
    /// succeeds.
    pub fn try_spawn_in_tenant<F>(
        &self,
        name: &str,
        weight: Weight,
        tenant: Option<TenantId>,
        body: F,
    ) -> Result<TaskHandle, RejectReason>
    where
        F: FnOnce(&TaskCtx) + Send + 'static,
    {
        let (task, ctx) = {
            let mut global = self.inner.global.lock();
            let id = TaskId(global.next_id);
            global.next_id += 1;
            let mut admitted = false;
            if global.admit.is_some() {
                // Ready-but-waiting depth across every shard feeds the
                // load-shed watermark (lock order: global, then shards
                // ascending).
                let runnable: usize = self
                    .inner
                    .shards
                    .iter()
                    .map(|s| s.lock().sched.nr_runnable())
                    .sum();
                let now = self.inner.now();
                let ctrl = global.admit.as_mut().expect("checked above"); // invariant: is_some() checked at the branch entry
                match ctrl.admit(tenant, now, runnable as u64) {
                    Ok(()) => admitted = true,
                    Err(reason) => {
                        if self.inner.trace.on() {
                            self.inner
                                .trace
                                .register_task(id, name, weight.get(), tenant);
                            self.inner.trace.emit(TraceEvent::TaskRejected {
                                t: now.as_nanos(),
                                task: id,
                            });
                        }
                        return Err(reason);
                    }
                }
            }
            global.live += 1;
            let shard = match global.bal.as_mut() {
                Some(bal) => bal.attach_tenant(id, weight, tenant),
                None => 0,
            };
            let task = Arc::new(RtTask {
                id,
                name: name.to_string(),
                tenant,
                admitted,
                shard: AtomicUsize::new(shard),
                preempt: AtomicBool::new(false),
                service_ns: AtomicU64::new(0),
                granted: OrderedMutex::new(rank::GRANTED, false),
                cv: Condvar::new(),
            });
            global.registry.insert(id, Arc::clone(&task));
            let mut core = self.inner.shards[shard].lock();
            core.tasks.insert(id, Arc::clone(&task));
            let now = self.inner.now();
            core.sched.attach_tenant(id, weight, tenant, now);
            if self.inner.trace.on() {
                self.inner
                    .trace
                    .register_task(id, name, weight.get(), tenant);
                self.inner.trace.emit(TraceEvent::Wake {
                    t: now.as_nanos(),
                    task: id,
                });
            }
            self.inner.dispatch(&mut core);
            let ctx = TaskCtx {
                inner: Arc::clone(&self.inner),
                task: Arc::clone(&task),
            };
            (task, ctx)
        };
        let inner = Arc::clone(&self.inner);
        let task2 = Arc::clone(&task);
        let thread = thread::Builder::new()
            .name(format!("sfs-task-{}", task.id))
            .spawn(move || {
                task2.wait_granted();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    body(&ctx);
                }));
                let panicked = result.is_err();
                {
                    let mut global = inner.global.lock();
                    let (_, mut core) = inner.lock_own_shard(&task2);
                    core.blocked.remove(&task2.id);
                    if core.slot_of(task2.id).is_some() {
                        inner.stop_running(&mut core, task2.id, SwitchReason::Exited);
                    } else if core.sched.weight_of(task2.id).is_some() {
                        // Exited while not on a CPU (e.g. right after a
                        // block woke it but before it was granted —
                        // cannot happen for well-formed bodies, but a
                        // panicking body may unwind from anywhere).
                        core.sched.reap(task2.id, inner.now());
                    }
                    if panicked {
                        // A panicking body is forcibly reaped: record
                        // it, and audit the scheduler's books right away
                        // so a weight leak is caught at the fault, not
                        // at some later unrelated assertion.
                        inner.reaped.fetch_add(1, Ordering::Relaxed); // relaxed: stats counter
                        if inner.trace.on() {
                            inner.trace.emit(TraceEvent::TaskReaped {
                                t: inner.now().as_nanos(),
                                task: task2.id,
                            });
                        }
                        let audit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            core.sched.check_invariants();
                        }));
                        if audit.is_err() {
                            // relaxed: stats counter
                            inner.invariant_violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if task2.admitted {
                        if let Some(admit) = global.admit.as_mut() {
                            admit.release(task2.tenant);
                        }
                    }
                    if let Some(bal) = global.bal.as_mut() {
                        bal.remove(task2.id);
                    }
                    core.tasks.remove(&task2.id);
                    global.registry.remove(&task2.id);
                    global.live -= 1;
                    inner.dispatch(&mut core);
                    let s = task2.shard.load(Ordering::Acquire);
                    let idle = core.cpus.iter().any(|c| c.current.is_none());
                    drop(core);
                    if idle {
                        // The exit may have freed a CPU: offer it a
                        // stolen task before it idles.
                        inner.steal_on_idle(&mut global, s);
                    }
                    inner.idle_cv.notify_all();
                }
                if let Err(p) = result {
                    // Surface panics to the test harness.
                    eprintln!("task {} panicked: {p:?}", task2.id);
                }
            })
            .expect("spawning task thread"); // invariant: spawn-time, not hot path; OS thread-spawn failure is fatal
        Ok(TaskHandle {
            id: task.id,
            task,
            thread: Some(thread),
        })
    }

    /// Asks all cooperative loops to stop (see [`TaskCtx::stopped`]).
    pub fn stop(&self) {
        // relaxed: the lock acquisitions below publish the flag to
        // every task before any of them can observe the nudge.
        self.inner.stop_requested.store(true, Ordering::Relaxed);
        // Nudge everything through the scheduler so parked tasks get
        // CPU time to observe the stop flag, and release event-blocked
        // tasks so they can observe it too. Wakes stay on their home
        // shard — migration at shutdown is pointless churn.
        let mut global = self.inner.global.lock();
        let now = self.inner.now();
        for shard in &self.inner.shards {
            let mut core = shard.lock();
            for t in core.tasks.values() {
                t.preempt.store(true, Ordering::Release);
            }
            let blocked: Vec<TaskId> = core.blocked.drain().collect();
            for id in blocked {
                if let Some(bal) = global.bal.as_mut() {
                    bal.wake_in_place(id);
                }
                core.sched.wake(id, now);
            }
            self.inner.dispatch(&mut core);
        }
    }

    /// Blocks until every spawned task has finished.
    pub fn wait(&self) {
        let mut global = self.inner.global.lock();
        while global.live > 0 {
            global.wait(&self.inner.idle_cv);
        }
    }

    /// Number of context switches across shards: dispatches that
    /// granted a virtual CPU to a different task than the one that CPU
    /// last ran. Re-granting the same task after an idle gap is not a
    /// switch — the same definition the simulator uses, so the two
    /// substrates' counts are comparable.
    pub fn switches(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.lock().switches).sum()
    }

    /// Wakes an event-blocked task from outside the executor (e.g. the
    /// spawning thread kicking off a token ring). Returns `true` if the
    /// task was blocked.
    pub fn wake_task(&self, id: TaskId) -> bool {
        let Some(task) = self.inner.find_task(id) else {
            return false;
        };
        self.inner.wake_blocked(&task)
    }

    /// Current time since executor start.
    pub fn now(&self) -> Time {
        self.inner.now()
    }

    /// Number of run-queue shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Aggregated scheduler work counters across all shards, including
    /// the executor-level steal/rebalance/wake-migration counts.
    pub fn sched_stats(&self) -> SchedStats {
        let mut agg = SchedStats::default();
        for shard in &self.inner.shards {
            agg = agg.merged(shard.lock().sched.stats());
        }
        agg.shard_steals += self.inner.steals.load(Ordering::Relaxed); // relaxed: stats read
        agg.shard_rebalances += self.inner.rebalances.load(Ordering::Relaxed); // relaxed: stats read
        agg.shard_wake_migrations += self.inner.wake_migrations.load(Ordering::Relaxed); // relaxed: stats read
        agg
    }

    /// Runs a closure against the first shard's scheduler (for stats
    /// inspection; on a single-shard executor this is the whole
    /// policy). Sharded executors aggregate via
    /// [`Executor::sched_stats`].
    pub fn with_scheduler<R>(&self, f: impl FnOnce(&dyn Scheduler) -> R) -> R {
        let core = self.inner.shards[0].lock();
        f(core.sched.as_ref())
    }

    /// Spawn attempts refused by admission control so far. Zero when
    /// the executor has no admission policy.
    pub fn rejected(&self) -> u64 {
        self.inner
            .global
            .lock()
            .admit
            .as_ref()
            .map_or(0, sfs_core::admit::AdmissionControl::rejected)
    }

    /// Task bodies that panicked and were forcibly reaped.
    pub fn reaped(&self) -> u64 {
        self.inner.reaped.load(Ordering::Relaxed) // relaxed: stats read
    }

    /// Times the timer-thread watchdog declared a shard stalled and
    /// forced recovery (flag re-raise plus rebalance).
    pub fn watchdog_fires(&self) -> u64 {
        self.inner.watchdogs.load(Ordering::Relaxed) // relaxed: stats read
    }

    /// Scheduler-invariant audits that failed after a forced reap.
    /// Any non-zero value is a bug in the scheduling policy.
    pub fn invariant_violations(&self) -> u64 {
        self.inner.invariant_violations.load(Ordering::Relaxed) // relaxed: stats read
    }

    /// Fault injection: delays the next timer tick by `d`, so quantum
    /// expiry is observed late. Used by the chaos experiments to
    /// exercise the watchdog path deterministically.
    pub fn inject_timer_jitter(&self, d: Duration) {
        self.inner
            .timer_jitter
            .fetch_add(d.as_nanos(), Ordering::AcqRel);
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::policy::PolicySpec;
    use sfs_core::task::weight;

    fn small_sfs(cpus: u32) -> Box<dyn Scheduler> {
        PolicySpec::sfs()
            .with_quantum(Duration::from_millis(2))
            .build(cpus)
    }

    fn spin(ctx: &TaskCtx) {
        while !ctx.stopped() {
            std::hint::spin_loop();
            ctx.checkpoint();
        }
    }

    #[test]
    fn single_task_runs_and_exits() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let h = ex.spawn("t", weight(1), |_ctx| {
            // Finite work.
            let mut acc = 0u64;
            for i in 0..1_000_000u64 {
                acc = acc.wrapping_add(i);
            }
            assert!(acc > 0);
        });
        ex.wait();
        assert!(h.service() > Duration::ZERO);
        h.join();
    }

    #[test]
    fn proportional_shares_on_one_vcpu() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                timer_interval: Duration::from_micros(200),
            },
            small_sfs(1),
        );
        let a = ex.spawn("w1", weight(1), spin);
        let b = ex.spawn("w3", weight(3), spin);
        std::thread::sleep(std::time::Duration::from_millis(400));
        ex.stop();
        ex.wait();
        let (sa, sb) = (a.service().as_nanos() as f64, b.service().as_nanos() as f64);
        let ratio = sb / sa.max(1.0);
        assert!(
            (1.8..4.5).contains(&ratio),
            "expected ≈3:1 service ratio, got {ratio:.2} ({sb} vs {sa})"
        );
    }

    #[test]
    fn two_vcpus_run_concurrently() {
        let ex = Executor::new(
            RtConfig {
                cpus: 2,
                ..RtConfig::default()
            },
            small_sfs(2),
        );
        let a = ex.spawn("a", weight(1), spin);
        let b = ex.spawn("b", weight(1), spin);
        std::thread::sleep(std::time::Duration::from_millis(300));
        ex.stop();
        ex.wait();
        // Both held a CPU essentially the whole time.
        assert!(
            a.service() > Duration::from_millis(150),
            "{:?}",
            a.service()
        );
        assert!(
            b.service() > Duration::from_millis(150),
            "{:?}",
            b.service()
        );
    }

    #[test]
    fn block_for_releases_the_cpu() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let sleeper = ex.spawn("sleeper", weight(1), |ctx| {
            for _ in 0..3 {
                ctx.block_for(Duration::from_millis(30));
            }
        });
        let worker = ex.spawn("worker", weight(1), |ctx| {
            let until = Instant::now() + std::time::Duration::from_millis(120);
            while Instant::now() < until {
                ctx.checkpoint();
            }
        });
        ex.wait();
        // The worker must have run during the sleeper's blocks.
        assert!(
            worker.service() > Duration::from_millis(80),
            "worker starved: {:?}",
            worker.service()
        );
        assert!(sleeper.service() < Duration::from_millis(60));
        sleeper.join();
        worker.join();
    }

    #[test]
    fn yield_now_rotates_equal_weight_tasks() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let go = Arc::new(AtomicBool::new(false));
        let mk = |ex: &Executor, name: &str| {
            let go = Arc::clone(&go);
            ex.spawn(name, weight(1), move |ctx| {
                // Hold at the gate until both tasks are runnable, so
                // every counted yield below has a peer to rotate to.
                while !go.load(Ordering::Acquire) {
                    ctx.yield_now();
                }
                // Charge ~100 µs of real service per yield: per-yield
                // tag advances must dominate incidental skew (thread
                // startup latency is charged to the first slice), or
                // the surplus order degenerates to bursts instead of
                // rotation.
                for _ in 0..100 {
                    let t0 = Instant::now();
                    while t0.elapsed() < std::time::Duration::from_micros(100) {
                        std::hint::spin_loop();
                    }
                    ctx.yield_now();
                }
            })
        };
        let a = mk(&ex, "a");
        let b = mk(&ex, "b");
        let before = ex.switches();
        go.store(true, Ordering::Release);
        ex.wait();
        let switches = ex.switches() - before;
        // 200 equal-charge yields between two co-runnable equal-weight
        // tasks must rotate: a context switch on most yields. Allow
        // slack for occasional double-runs when charges are noisy.
        assert!(switches >= 120, "only {switches} switches");
        a.join();
        b.join();
    }

    #[test]
    fn timesharing_policy_also_drives_executor() {
        // Small epochs (2 ticks = 20 ms) so a 300 ms run spans many
        // epochs; the default 200 ms quantum would dominate the run.
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                timer_interval: Duration::from_micros(500),
            },
            PolicySpec::time_sharing().with_ticks(2).build(1),
        );
        let a = ex.spawn("a", weight(1), spin);
        let b = ex.spawn("b", weight(10), spin);
        std::thread::sleep(std::time::Duration::from_millis(300));
        ex.stop();
        ex.wait();
        // Time sharing ignores weights: roughly equal.
        let ratio = b.service().as_nanos() as f64 / a.service().as_nanos().max(1) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "time sharing should be ≈1:1, got {ratio:.2}"
        );
    }

    #[test]
    fn stats_visible_through_executor() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let h = ex.spawn("t", weight(1), |ctx| {
            for _ in 0..10 {
                ctx.yield_now();
            }
        });
        ex.wait();
        let picks = ex.with_scheduler(|s| s.stats().picks);
        assert!(picks >= 10, "picks = {picks}");
        assert!(ex.sched_stats().picks >= 10);
        h.join();
    }

    #[test]
    fn sharded_executor_keeps_proportional_shares() {
        let spec: PolicySpec = "sfs:quantum=2ms,shards=2,rebalance=10ms".parse().unwrap();
        let ex = Executor::from_spec(
            RtConfig {
                cpus: 2,
                timer_interval: Duration::from_micros(200),
            },
            &spec,
        );
        assert_eq!(ex.shards(), 2);
        // Four spinners 3:3:1:1 over two single-CPU shards: placement
        // pairs a heavy with a light on each shard, and the global
        // snapshot keeps the weights feasible.
        let h1 = ex.spawn("w3a", weight(3), spin);
        let h2 = ex.spawn("w3b", weight(3), spin);
        let l1 = ex.spawn("w1a", weight(1), spin);
        let l2 = ex.spawn("w1b", weight(1), spin);
        std::thread::sleep(std::time::Duration::from_millis(500));
        ex.stop();
        ex.wait();
        let heavy = (h1.service() + h2.service()).as_nanos() as f64;
        let light = (l1.service() + l2.service()).as_nanos() as f64;
        let ratio = heavy / light.max(1.0);
        assert!(
            (1.7..5.0).contains(&ratio),
            "expected ≈3:1 heavy:light, got {ratio:.2}"
        );
        // Work conservation: the whole machine stayed busy.
        let total = heavy + light;
        assert!(
            total > 2.0 * 0.8 * 500e6,
            "machine under-utilised: {total} ns over 2 CPUs × 500 ms"
        );
    }

    #[test]
    fn sharded_executor_steals_work_from_loaded_shards() {
        let spec: PolicySpec = "sfs:quantum=1ms,shards=2,rebalance=5ms".parse().unwrap();
        let ex = Executor::from_spec(
            RtConfig {
                cpus: 2,
                timer_interval: Duration::from_micros(200),
            },
            &spec,
        );
        // Three equal spinners on two shards: one shard gets two tasks.
        // Stealing + rebalancing must keep both CPUs busy and the
        // allocation roughly equal thirds.
        let hs: Vec<TaskHandle> = (0..3)
            .map(|i| ex.spawn(&format!("t{i}"), weight(1), spin))
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(400));
        ex.stop();
        ex.wait();
        let svcs: Vec<f64> = hs.iter().map(|h| h.service().as_nanos() as f64).collect();
        let total: f64 = svcs.iter().sum();
        assert!(
            total > 2.0 * 0.8 * 400e6,
            "idle CPU despite ready tasks: {svcs:?}"
        );
        let stats = ex.sched_stats();
        assert!(
            stats.shard_steals + stats.shard_wake_migrations + stats.shard_rebalances > 0
                || svcs.iter().all(|&s| s > 0.25 * 400e6),
            "no balancing activity and skewed shares: {svcs:?} ({stats:?})"
        );
        for h in hs {
            h.join();
        }
    }

    #[test]
    fn sharded_executor_blocking_and_waking_across_shards() {
        let spec: PolicySpec = "sfs:quantum=1ms,shards=2".parse().unwrap();
        let ex = Executor::from_spec(
            RtConfig {
                cpus: 2,
                timer_interval: Duration::from_micros(200),
            },
            &spec,
        );
        let sleeper = ex.spawn("sleeper", weight(1), |ctx| {
            for _ in 0..5 {
                ctx.block_for(Duration::from_millis(10));
            }
        });
        let spinner = ex.spawn("spinner", weight(1), spin);
        std::thread::sleep(std::time::Duration::from_millis(200));
        ex.stop();
        ex.wait();
        assert!(sleeper.service() < Duration::from_millis(100));
        assert!(spinner.service() > Duration::from_millis(100));
    }

    #[test]
    fn panicking_task_is_reaped_and_survivors_keep_their_shares() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                timer_interval: Duration::from_micros(200),
            },
            small_sfs(1),
        );
        let a = ex.spawn("w1", weight(1), spin);
        let b = ex.spawn("w3", weight(3), spin);
        let bomb = ex.spawn("bomb", weight(2), |ctx| {
            let start = std::time::Instant::now();
            while start.elapsed() < std::time::Duration::from_millis(50) {
                std::hint::spin_loop();
                ctx.checkpoint();
            }
            panic!("injected fault");
        });
        std::thread::sleep(std::time::Duration::from_millis(450));
        ex.stop();
        ex.wait();
        assert_eq!(ex.reaped(), 1, "panicking body must be counted as reaped");
        assert_eq!(
            ex.invariant_violations(),
            0,
            "reap must not corrupt the scheduler's books"
        );
        bomb.join();
        // The survivors split the CPU 3:1 after the reap; the bomb's
        // weight must be fully released (§2.1 readjustment on exit).
        let (sa, sb) = (a.service().as_nanos() as f64, b.service().as_nanos() as f64);
        let ratio = sb / sa.max(1.0);
        assert!(
            (1.8..4.5).contains(&ratio),
            "expected ≈3:1 after reap, got {ratio:.2} ({sb} vs {sa})"
        );
        a.join();
        b.join();
    }

    #[test]
    fn admission_policy_rejects_over_cap_spawns() {
        let spec: PolicySpec = "sfs:quantum=2ms,admit(max=2)".parse().unwrap();
        let ex = Executor::from_spec(
            RtConfig {
                cpus: 1,
                timer_interval: Duration::from_micros(200),
            },
            &spec,
        );
        let a = ex
            .try_spawn_in_tenant("a", weight(1), None, spin)
            .expect("first task admitted");
        let b = ex
            .try_spawn_in_tenant("b", weight(1), None, spin)
            .expect("second task admitted");
        let err = match ex.try_spawn_in_tenant("c", weight(1), None, spin) {
            Ok(_) => panic!("third task must hit the cap"),
            Err(reason) => reason,
        };
        assert_eq!(err, sfs_core::admit::RejectReason::TenantCap);
        assert_eq!(ex.rejected(), 1);
        ex.stop();
        ex.wait();
        a.join();
        b.join();
        // Exits release slots: a fresh spawn is admitted again.
        let c = ex
            .try_spawn_in_tenant("c2", weight(1), None, |_ctx| {})
            .expect("slot released after exit");
        c.join();
    }
}
