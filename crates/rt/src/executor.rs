//! A userspace gang scheduler running real OS threads.
//!
//! The executor emulates the paper's kernel environment in user space:
//! `p` *virtual processors* gate which OS threads may run. A task runs
//! only while it holds a virtual CPU; the policy (any
//! [`sfs_core::sched::Scheduler`]) decides who holds one. Preemption is
//! cooperative at *checkpoints*: a timer thread raises a per-task
//! preempt flag when the quantum expires, and the task's next
//! [`TaskCtx::checkpoint`] call enters the scheduler — the userspace
//! analogue of a timer interrupt hitting at the next instruction
//! boundary. Blocking I/O is modelled by [`TaskCtx::block_for`], which
//! releases the virtual CPU for the sleep duration.
//!
//! This substrate is what the overhead experiments (Table 1, Fig. 7)
//! measure: every scheduler entry takes the same lock and runs the same
//! policy code a kernel implementation would, so the *relative* costs of
//! SFS vs time sharing are preserved, even though the absolute numbers
//! are userspace numbers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use sfs_core::sched::{Scheduler, SwitchReason};
use sfs_core::task::{CpuId, TaskId, Weight};
use sfs_core::time::{Duration, Time};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Number of virtual processors.
    pub cpus: u32,
    /// How often the timer thread scans for expired quanta.
    pub timer_interval: Duration,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            cpus: 2,
            timer_interval: Duration::from_millis(1),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CpuSlot {
    current: Option<TaskId>,
    dispatched_at: Instant,
    slice: Duration,
}

struct RtTask {
    id: TaskId,
    name: String,
    /// Raised by the timer thread or a wakeup preemption; consumed at
    /// the next checkpoint.
    preempt: AtomicBool,
    /// Total CPU service in nanoseconds.
    service_ns: AtomicU64,
    /// "You hold a virtual CPU" flag, guarded by its own mutex so a
    /// parked thread can wait on it without the core lock.
    granted: Mutex<bool>,
    cv: Condvar,
}

impl RtTask {
    fn grant(&self) {
        let mut g = self.granted.lock();
        *g = true;
        self.cv.notify_one();
    }

    fn wait_granted(&self) {
        let mut g = self.granted.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
    }

    fn revoke(&self) {
        *self.granted.lock() = false;
    }
}

struct Core {
    sched: Box<dyn Scheduler>,
    cpus: Vec<CpuSlot>,
    tasks: Vec<Arc<RtTask>>,
    /// Tasks currently blocked in the scheduler (event or timed sleep).
    blocked: std::collections::HashSet<TaskId>,
    next_id: u64,
    live: usize,
    switches: u64,
}

impl Core {
    fn task(&self, id: TaskId) -> &Arc<RtTask> {
        self.tasks
            .iter()
            .find(|t| t.id == id)
            .expect("unknown task id")
    }

    fn slot_of(&self, id: TaskId) -> Option<usize> {
        self.cpus.iter().position(|c| c.current == Some(id))
    }
}

struct Inner {
    cfg: RtConfig,
    core: Mutex<Core>,
    idle_cv: Condvar,
    epoch: Instant,
    shutdown: AtomicBool,
    stop_requested: AtomicBool,
}

impl Inner {
    fn now(&self) -> Time {
        Time(u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Fills idle virtual CPUs. Caller holds the core lock.
    fn dispatch_all(&self, core: &mut Core) {
        let now = self.now();
        for i in 0..core.cpus.len() {
            if core.cpus[i].current.is_some() {
                continue;
            }
            let Some(next) = core.sched.pick_next(CpuId(i as u32), now) else {
                continue;
            };
            let slice = core.sched.time_slice(next);
            core.cpus[i] = CpuSlot {
                current: Some(next),
                dispatched_at: Instant::now(),
                slice,
            };
            core.switches += 1;
            let task = core.task(next).clone();
            task.preempt.store(false, Ordering::Release);
            task.grant();
        }
    }

    /// Removes `id` from its virtual CPU, charging actual usage.
    /// Caller holds the core lock.
    fn stop_running(&self, core: &mut Core, id: TaskId, reason: SwitchReason) {
        let slot = core.slot_of(id).expect("task not on any cpu");
        let used = Duration::from_std(core.cpus[slot].dispatched_at.elapsed());
        core.cpus[slot].current = None;
        let task = core.task(id).clone();
        task.service_ns
            .fetch_add(used.as_nanos(), Ordering::Relaxed);
        task.revoke();
        if reason == SwitchReason::Blocked {
            core.blocked.insert(id);
        }
        core.sched.put_prev(id, used, reason, self.now());
    }
}

/// A handle to a spawned task, returned by [`Executor::spawn`].
pub struct TaskHandle {
    id: TaskId,
    task: Arc<RtTask>,
    thread: Option<thread::JoinHandle<()>>,
}

impl TaskHandle {
    /// The task's id in the scheduler.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Total CPU service (virtual-CPU hold time) so far.
    pub fn service(&self) -> Duration {
        Duration::from_nanos(self.task.service_ns.load(Ordering::Relaxed))
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.task.name
    }

    /// Waits for the task's thread to finish.
    pub fn join(mut self) {
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }

    /// Waits for the task's thread to finish — including the scheduler
    /// bookkeeping that charges its final quantum — and returns the
    /// task's total CPU service.
    pub fn join_service(mut self) -> Duration {
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
        Duration::from_nanos(self.task.service_ns.load(Ordering::Relaxed))
    }
}

/// Context passed to every task body.
pub struct TaskCtx {
    inner: Arc<Inner>,
    task: Arc<RtTask>,
}

impl TaskCtx {
    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.task.id
    }

    /// True once [`Executor::stop`] has been called; loops should exit.
    pub fn stopped(&self) -> bool {
        self.inner.stop_requested.load(Ordering::Relaxed)
    }

    /// A preemption point: nearly free unless the quantum has expired,
    /// in which case the thread re-enters the scheduler and may hand its
    /// virtual CPU to another task.
    #[inline]
    pub fn checkpoint(&self) {
        if self.task.preempt.load(Ordering::Acquire) {
            self.reschedule(SwitchReason::Preempted);
        }
    }

    /// Voluntarily yields the virtual CPU (remains runnable).
    pub fn yield_now(&self) {
        self.reschedule(SwitchReason::Yielded);
    }

    fn reschedule(&self, reason: SwitchReason) {
        {
            let mut core = self.inner.core.lock();
            // The flag may be stale (e.g. raised just as we blocked and
            // got re-granted); only act when we actually hold a CPU.
            if core.slot_of(self.task.id).is_none() {
                self.task.preempt.store(false, Ordering::Release);
                return;
            }
            self.inner.stop_running(&mut core, self.task.id, reason);
            self.inner.dispatch_all(&mut core);
        }
        self.task.wait_granted();
    }

    /// Event blocking: atomically consumes `token` if set, otherwise
    /// blocks (releases the virtual CPU) until another task sets the
    /// token and calls [`TaskCtx::wake_task`]. Returns once the token
    /// has been consumed.
    ///
    /// Token inspection happens under the scheduler lock on both the
    /// consumer and producer sides, so no wakeup can be lost. This is
    /// the substrate for pipe-style handoffs (the lmbench `lat_ctx`
    /// analogue in [`crate::microbench`]).
    pub fn block_on_token(&self, token: &AtomicBool) {
        loop {
            {
                let mut core = self.inner.core.lock();
                if token.swap(false, Ordering::AcqRel) {
                    return;
                }
                if self.inner.stop_requested.load(Ordering::Relaxed) {
                    return;
                }
                self.inner
                    .stop_running(&mut core, self.task.id, SwitchReason::Blocked);
                self.inner.dispatch_all(&mut core);
            }
            self.task.wait_granted();
        }
    }

    /// Wakes a task blocked via [`TaskCtx::block_on_token`] (or any
    /// blocked task). Returns `true` if the task was blocked. The
    /// producer must set its token *before* calling this.
    pub fn wake_task(&self, id: TaskId) -> bool {
        let mut core = self.inner.core.lock();
        if !core.blocked.remove(&id) {
            return false;
        }
        let now = self.inner.now();
        core.sched.wake(id, now);
        self.inner.dispatch_all(&mut core);
        if core.slot_of(id).is_none() {
            for i in 0..core.cpus.len() {
                let Some(running) = core.cpus[i].current else {
                    continue;
                };
                let ran = Duration::from_std(core.cpus[i].dispatched_at.elapsed());
                if core.sched.wake_preempts(id, running, ran, now) {
                    core.task(running).preempt.store(true, Ordering::Release);
                    break;
                }
            }
        }
        true
    }

    /// Blocks (releases the virtual CPU) for the given duration — the
    /// userspace analogue of sleeping on I/O.
    pub fn block_for(&self, d: Duration) {
        {
            let mut core = self.inner.core.lock();
            self.inner
                .stop_running(&mut core, self.task.id, SwitchReason::Blocked);
            self.inner.dispatch_all(&mut core);
        }
        thread::sleep(d.to_std());
        {
            let mut core = self.inner.core.lock();
            let now = self.inner.now();
            // `stop()` or `wake_task` may have woken us already; only
            // report the wakeup if we are still blocked.
            if core.blocked.remove(&self.task.id) {
                core.sched.wake(self.task.id, now);
                self.inner.dispatch_all(&mut core);
                // No idle CPU took us: ask for a wakeup preemption.
                if core.slot_of(self.task.id).is_none() {
                    for i in 0..core.cpus.len() {
                        let Some(running) = core.cpus[i].current else {
                            continue;
                        };
                        let ran = Duration::from_std(core.cpus[i].dispatched_at.elapsed());
                        if core.sched.wake_preempts(self.task.id, running, ran, now) {
                            core.task(running).preempt.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
            }
        }
        self.task.wait_granted();
    }
}

/// The userspace executor: `p` virtual CPUs multiplexed over real
/// threads by an `sfs-core` scheduling policy.
pub struct Executor {
    inner: Arc<Inner>,
    timer: Option<thread::JoinHandle<()>>,
}

impl Executor {
    /// Creates an executor over the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler's CPU count differs from the config's.
    pub fn new(cfg: RtConfig, sched: Box<dyn Scheduler>) -> Executor {
        assert_eq!(sched.cpus(), cfg.cpus, "scheduler/machine mismatch");
        let inner = Arc::new(Inner {
            core: Mutex::new(Core {
                sched,
                cpus: vec![
                    CpuSlot {
                        current: None,
                        dispatched_at: Instant::now(),
                        slice: Duration::ZERO,
                    };
                    cfg.cpus as usize
                ],
                tasks: Vec::new(),
                blocked: std::collections::HashSet::new(),
                next_id: 1,
                live: 0,
                switches: 0,
            }),
            cfg,
            idle_cv: Condvar::new(),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            stop_requested: AtomicBool::new(false),
        });
        let timer = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("sfs-rt-timer".into())
                .spawn(move || Executor::timer_loop(&inner))
                .expect("spawning timer thread")
        };
        Executor {
            inner,
            timer: Some(timer),
        }
    }

    fn timer_loop(inner: &Inner) {
        while !inner.shutdown.load(Ordering::Acquire) {
            thread::sleep(inner.cfg.timer_interval.to_std());
            let core = inner.core.lock();
            for slot in &core.cpus {
                let Some(id) = slot.current else { continue };
                let elapsed = Duration::from_std(slot.dispatched_at.elapsed());
                if elapsed >= slot.slice {
                    core.task(id).preempt.store(true, Ordering::Release);
                }
            }
        }
    }

    /// Spawns a task with a weight; the body receives a [`TaskCtx`] and
    /// must call [`TaskCtx::checkpoint`] regularly.
    pub fn spawn<F>(&self, name: &str, weight: Weight, body: F) -> TaskHandle
    where
        F: FnOnce(&TaskCtx) + Send + 'static,
    {
        let (task, ctx) = {
            let mut core = self.inner.core.lock();
            let id = TaskId(core.next_id);
            core.next_id += 1;
            let task = Arc::new(RtTask {
                id,
                name: name.to_string(),
                preempt: AtomicBool::new(false),
                service_ns: AtomicU64::new(0),
                granted: Mutex::new(false),
                cv: Condvar::new(),
            });
            core.tasks.push(Arc::clone(&task));
            core.live += 1;
            let now = self.inner.now();
            core.sched.attach(id, weight, now);
            self.inner.dispatch_all(&mut core);
            let ctx = TaskCtx {
                inner: Arc::clone(&self.inner),
                task: Arc::clone(&task),
            };
            (task, ctx)
        };
        let inner = Arc::clone(&self.inner);
        let task2 = Arc::clone(&task);
        let thread = thread::Builder::new()
            .name(format!("sfs-task-{}", task.id))
            .spawn(move || {
                task2.wait_granted();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    body(&ctx);
                }));
                {
                    let mut core = inner.core.lock();
                    core.blocked.remove(&task2.id);
                    if core.slot_of(task2.id).is_some() {
                        inner.stop_running(&mut core, task2.id, SwitchReason::Exited);
                    } else {
                        // Exited while not on a CPU (e.g. right after a
                        // block woke it but before it was granted —
                        // cannot happen for well-formed bodies, but a
                        // panicking body may unwind from anywhere).
                        core.sched.detach(task2.id, inner.now());
                    }
                    core.live -= 1;
                    inner.dispatch_all(&mut core);
                    inner.idle_cv.notify_all();
                }
                if let Err(p) = result {
                    // Surface panics to the test harness.
                    eprintln!("task {} panicked: {p:?}", task2.id);
                }
            })
            .expect("spawning task thread");
        TaskHandle {
            id: task.id,
            task,
            thread: Some(thread),
        }
    }

    /// Asks all cooperative loops to stop (see [`TaskCtx::stopped`]).
    pub fn stop(&self) {
        self.inner.stop_requested.store(true, Ordering::Relaxed);
        // Nudge everything through the scheduler so parked tasks get
        // CPU time to observe the stop flag, and release event-blocked
        // tasks so they can observe it too.
        let mut core = self.inner.core.lock();
        for t in &core.tasks {
            t.preempt.store(true, Ordering::Release);
        }
        let blocked: Vec<TaskId> = core.blocked.drain().collect();
        let now = self.inner.now();
        for id in blocked {
            core.sched.wake(id, now);
        }
        self.inner.dispatch_all(&mut core);
    }

    /// Blocks until every spawned task has finished.
    pub fn wait(&self) {
        let mut core = self.inner.core.lock();
        while core.live > 0 {
            self.inner.idle_cv.wait(&mut core);
        }
    }

    /// Number of dispatches that granted a virtual CPU.
    pub fn switches(&self) -> u64 {
        self.inner.core.lock().switches
    }

    /// Wakes an event-blocked task from outside the executor (e.g. the
    /// spawning thread kicking off a token ring). Returns `true` if the
    /// task was blocked.
    pub fn wake_task(&self, id: TaskId) -> bool {
        let mut core = self.inner.core.lock();
        if !core.blocked.remove(&id) {
            return false;
        }
        let now = self.inner.now();
        core.sched.wake(id, now);
        self.inner.dispatch_all(&mut core);
        true
    }

    /// Current time since executor start.
    pub fn now(&self) -> Time {
        self.inner.now()
    }

    /// Runs a closure against the scheduler (for stats inspection).
    pub fn with_scheduler<R>(&self, f: impl FnOnce(&dyn Scheduler) -> R) -> R {
        let core = self.inner.core.lock();
        f(core.sched.as_ref())
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.timer.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_core::policy::PolicySpec;
    use sfs_core::task::weight;

    fn small_sfs(cpus: u32) -> Box<dyn Scheduler> {
        PolicySpec::sfs()
            .with_quantum(Duration::from_millis(2))
            .build(cpus)
    }

    fn spin(ctx: &TaskCtx) {
        while !ctx.stopped() {
            std::hint::spin_loop();
            ctx.checkpoint();
        }
    }

    #[test]
    fn single_task_runs_and_exits() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let h = ex.spawn("t", weight(1), |_ctx| {
            // Finite work.
            let mut acc = 0u64;
            for i in 0..1_000_000u64 {
                acc = acc.wrapping_add(i);
            }
            assert!(acc > 0);
        });
        ex.wait();
        assert!(h.service() > Duration::ZERO);
        h.join();
    }

    #[test]
    fn proportional_shares_on_one_vcpu() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                timer_interval: Duration::from_micros(200),
            },
            small_sfs(1),
        );
        let a = ex.spawn("w1", weight(1), spin);
        let b = ex.spawn("w3", weight(3), spin);
        std::thread::sleep(std::time::Duration::from_millis(400));
        ex.stop();
        ex.wait();
        let (sa, sb) = (a.service().as_nanos() as f64, b.service().as_nanos() as f64);
        let ratio = sb / sa.max(1.0);
        assert!(
            (1.8..4.5).contains(&ratio),
            "expected ≈3:1 service ratio, got {ratio:.2} ({sb} vs {sa})"
        );
    }

    #[test]
    fn two_vcpus_run_concurrently() {
        let ex = Executor::new(
            RtConfig {
                cpus: 2,
                ..RtConfig::default()
            },
            small_sfs(2),
        );
        let a = ex.spawn("a", weight(1), spin);
        let b = ex.spawn("b", weight(1), spin);
        std::thread::sleep(std::time::Duration::from_millis(300));
        ex.stop();
        ex.wait();
        // Both held a CPU essentially the whole time.
        assert!(
            a.service() > Duration::from_millis(150),
            "{:?}",
            a.service()
        );
        assert!(
            b.service() > Duration::from_millis(150),
            "{:?}",
            b.service()
        );
    }

    #[test]
    fn block_for_releases_the_cpu() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let sleeper = ex.spawn("sleeper", weight(1), |ctx| {
            for _ in 0..3 {
                ctx.block_for(Duration::from_millis(30));
            }
        });
        let worker = ex.spawn("worker", weight(1), |ctx| {
            let until = Instant::now() + std::time::Duration::from_millis(120);
            while Instant::now() < until {
                ctx.checkpoint();
            }
        });
        ex.wait();
        // The worker must have run during the sleeper's blocks.
        assert!(
            worker.service() > Duration::from_millis(80),
            "worker starved: {:?}",
            worker.service()
        );
        assert!(sleeper.service() < Duration::from_millis(60));
        sleeper.join();
        worker.join();
    }

    #[test]
    fn yield_now_rotates_equal_weight_tasks() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let before = ex.switches();
        let mk = |ex: &Executor, name: &str| {
            ex.spawn(name, weight(1), |ctx| {
                for _ in 0..200 {
                    ctx.yield_now();
                }
            })
        };
        let a = mk(&ex, "a");
        let b = mk(&ex, "b");
        ex.wait();
        let switches = ex.switches() - before;
        // 400 yields must produce at least a few hundred dispatches.
        assert!(switches >= 300, "only {switches} switches");
        a.join();
        b.join();
    }

    #[test]
    fn timesharing_policy_also_drives_executor() {
        // Small epochs (2 ticks = 20 ms) so a 300 ms run spans many
        // epochs; the default 200 ms quantum would dominate the run.
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                timer_interval: Duration::from_micros(500),
            },
            PolicySpec::time_sharing().with_ticks(2).build(1),
        );
        let a = ex.spawn("a", weight(1), spin);
        let b = ex.spawn("b", weight(10), spin);
        std::thread::sleep(std::time::Duration::from_millis(300));
        ex.stop();
        ex.wait();
        // Time sharing ignores weights: roughly equal.
        let ratio = b.service().as_nanos() as f64 / a.service().as_nanos().max(1) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "time sharing should be ≈1:1, got {ratio:.2}"
        );
    }

    #[test]
    fn stats_visible_through_executor() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            small_sfs(1),
        );
        let h = ex.spawn("t", weight(1), |ctx| {
            for _ in 0..10 {
                ctx.yield_now();
            }
        });
        ex.wait();
        let picks = ex.with_scheduler(|s| s.stats().picks);
        assert!(picks >= 10, "picks = {picks}");
        h.join();
    }
}
