//! Runs `sfs-workloads` behaviours on real threads.
//!
//! The same [`Behavior`] state machines the simulator executes can run
//! under the executor: `Compute` phases spin on the real clock with
//! checkpoints, `Block`/`BlockUntil` phases release the virtual CPU.
//! This lets the examples and tests exercise identical workloads on
//! both substrates.

use std::time::Instant;

use sfs_core::time::{Duration, Time};
use sfs_workloads::{Behavior, Phase};

use crate::executor::TaskCtx;

/// Statistics from driving a behaviour to completion (or until stop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Completed compute phases (frames, requests, jobs).
    pub completions: u64,
    /// Total response time (wake → compute completion), nanoseconds.
    pub response_ns_total: u64,
    /// Number of response samples.
    pub responses: u64,
}

impl DriveStats {
    /// Mean response time, if any responses were recorded.
    pub fn mean_response(&self) -> Option<Duration> {
        self.response_ns_total
            .checked_div(self.responses)
            .map(Duration::from_nanos)
    }
}

/// Full per-phase record from driving a behaviour: everything in
/// [`DriveStats`] plus the individual response samples (for percentile
/// summaries) and how the drive ended, as the common experiment
/// reports need.
#[derive(Debug, Clone, Default)]
pub struct DriveRecord {
    /// Completed compute phases (frames, requests, jobs).
    pub completions: u64,
    /// Response-time samples (wake → compute completion), milliseconds.
    pub responses_ms: Vec<f64>,
    /// True if the behaviour reached [`Phase::Exit`] (as opposed to
    /// being cut off by an executor stop or a kill deadline).
    pub finished: bool,
    /// True if the drive was aborted by the caller's kill deadline
    /// (the rt analogue of the simulator's kill event).
    pub deadline_hit: bool,
}

/// How a drive loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriveEnd {
    /// The executor's stop flag was observed.
    Stopped,
    /// The kill deadline passed (mid-phase aborts count nothing).
    DeadlineHit,
    /// The behaviour reached [`Phase::Exit`].
    Finished,
}

/// The shared drive loop: runs the behaviour, reporting each completed
/// compute phase's response time to `on_response`, until the behaviour
/// exits, the executor stops, or the kill `deadline` (if any) passes.
/// A compute phase cut off by the deadline is aborted *without*
/// counting a completion — the simulator's kill-event semantics.
fn drive_loop(
    ctx: &TaskCtx,
    mut behavior: Box<dyn Behavior>,
    epoch: Instant,
    deadline: Option<Time>,
    mut on_response: impl FnMut(Duration),
) -> (u64, DriveEnd) {
    let now_fn = |epoch: Instant| -> Time {
        Time(u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    };
    // Lazy: the clock is only read for this check when a deadline is
    // actually set, keeping the common (deadline-less) spin loop at one
    // clock read per iteration.
    let past_deadline = || deadline.is_some_and(|d| now_fn(epoch) >= d);
    let mut completions = 0u64;
    let mut last_wake = now_fn(epoch);
    loop {
        if ctx.stopped() {
            return (completions, DriveEnd::Stopped);
        }
        if past_deadline() {
            return (completions, DriveEnd::DeadlineHit);
        }
        let now = now_fn(epoch);
        match behavior.next(now) {
            Phase::Compute(d) => {
                let spin_until = Instant::now() + d.to_std();
                while Instant::now() < spin_until {
                    if ctx.stopped() {
                        return (completions, DriveEnd::Stopped);
                    }
                    if past_deadline() {
                        return (completions, DriveEnd::DeadlineHit);
                    }
                    std::hint::spin_loop();
                    ctx.checkpoint();
                }
                completions += 1;
                on_response(now_fn(epoch).since(last_wake));
            }
            Phase::Block(d) => {
                // Clip sleeps to the deadline so a killed task does not
                // linger asleep past its kill time.
                let d = match deadline {
                    Some(kill) => d.min(kill.since(now)),
                    None => d,
                };
                ctx.block_for(d);
                last_wake = now_fn(epoch);
            }
            Phase::BlockUntil(t) => {
                let t = match deadline {
                    Some(kill) => t.min(kill),
                    None => t,
                };
                if t > now {
                    ctx.block_for(t.since(now));
                }
                last_wake = now_fn(epoch);
            }
            Phase::Exit => return (completions, DriveEnd::Finished),
        }
    }
}

/// Executes a behaviour on the current task until it exits or the
/// executor is stopped. Returns the accumulated statistics in constant
/// space (no per-sample allocation).
///
/// `Compute(d)` phases consume *virtual-CPU hold time*: the spin only
/// counts progress while the task holds its grant, which checkpointing
/// approximates closely for small quanta.
pub fn drive(ctx: &TaskCtx, behavior: Box<dyn Behavior>, epoch: Instant) -> DriveStats {
    let mut stats = DriveStats::default();
    let (completions, _) = drive_loop(ctx, behavior, epoch, None, |response| {
        stats.response_ns_total += response.as_nanos();
        stats.responses += 1;
    });
    stats.completions = completions;
    stats
}

/// Like [`drive`], but keeps the individual response samples and the
/// completion flag (the experiment front-end builds its substrate-
/// independent reports from this).
pub fn drive_recording(ctx: &TaskCtx, behavior: Box<dyn Behavior>, epoch: Instant) -> DriveRecord {
    drive_recording_until(ctx, behavior, epoch, None)
}

/// Like [`drive_recording`], with an optional kill deadline: once the
/// epoch-relative clock reaches `deadline` the drive aborts — mid-phase,
/// without crediting the cut-off phase as a completion — mirroring the
/// simulator's kill event for `TaskSpec::stop_at`.
pub fn drive_recording_until(
    ctx: &TaskCtx,
    behavior: Box<dyn Behavior>,
    epoch: Instant,
    deadline: Option<Time>,
) -> DriveRecord {
    let mut rec = DriveRecord::default();
    let mut responses_ms = Vec::new();
    let (completions, end) = drive_loop(ctx, behavior, epoch, deadline, |response| {
        responses_ms.push(response.as_millis_f64());
    });
    rec.completions = completions;
    rec.responses_ms = responses_ms;
    rec.finished = end == DriveEnd::Finished;
    rec.deadline_hit = end == DriveEnd::DeadlineHit;
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, RtConfig};
    use crossbeam::channel;
    use sfs_core::policy::PolicySpec;
    use sfs_core::task::weight;
    use sfs_workloads::{BehaviorSpec, FiniteLoop};

    #[test]
    fn finite_loop_completes_and_exits() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            PolicySpec::sfs().build(1),
        );
        let epoch = Instant::now();
        let (tx, rx) = channel::bounded(1);
        let h = ex.spawn("job", weight(1), move |ctx| {
            let b = Box::new(FiniteLoop::new(Duration::from_millis(20)));
            let st = drive(ctx, b, epoch);
            let _ = tx.send(st);
        });
        ex.wait();
        h.join();
        let st = rx.recv().unwrap();
        assert_eq!(st.completions, 1);
    }

    #[test]
    fn interact_records_responses() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            PolicySpec::sfs().build(1),
        );
        let epoch = Instant::now();
        let (tx, rx) = channel::bounded(1);
        let spec = BehaviorSpec::Interact {
            think: Duration::from_millis(5),
            burst: Duration::from_millis(1),
        };
        let h = ex.spawn("interact", weight(1), move |ctx| {
            let b = spec.build(1);
            let st = drive(ctx, b, epoch);
            let _ = tx.send(st);
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        ex.stop();
        ex.wait();
        h.join();
        let st = rx.recv().unwrap();
        assert!(st.completions >= 3, "completions: {}", st.completions);
        assert!(st.mean_response().is_some());
    }
}
