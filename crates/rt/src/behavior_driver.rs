//! Runs `sfs-workloads` behaviours on real threads.
//!
//! The same [`Behavior`] state machines the simulator executes can run
//! under the executor: `Compute` phases spin on the real clock with
//! checkpoints, `Block`/`BlockUntil` phases release the virtual CPU.
//! This lets the examples and tests exercise identical workloads on
//! both substrates.

use std::time::Instant;

use sfs_core::time::{Duration, Time};
use sfs_workloads::{Behavior, Phase};

use crate::executor::TaskCtx;

/// Statistics from driving a behaviour to completion (or until stop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Completed compute phases (frames, requests, jobs).
    pub completions: u64,
    /// Total response time (wake → compute completion), nanoseconds.
    pub response_ns_total: u64,
    /// Number of response samples.
    pub responses: u64,
}

impl DriveStats {
    /// Mean response time, if any responses were recorded.
    pub fn mean_response(&self) -> Option<Duration> {
        self.response_ns_total
            .checked_div(self.responses)
            .map(Duration::from_nanos)
    }
}

/// Executes a behaviour on the current task until it exits or the
/// executor is stopped. Returns the accumulated statistics.
///
/// `Compute(d)` phases consume *virtual-CPU hold time*: the spin only
/// counts progress while the task holds its grant, which checkpointing
/// approximates closely for small quanta.
pub fn drive(ctx: &TaskCtx, mut behavior: Box<dyn Behavior>, epoch: Instant) -> DriveStats {
    let mut stats = DriveStats::default();
    let now_fn = |epoch: Instant| -> Time {
        Time(u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    };
    let mut last_wake = now_fn(epoch);
    loop {
        if ctx.stopped() {
            return stats;
        }
        let now = now_fn(epoch);
        match behavior.next(now) {
            Phase::Compute(d) => {
                let deadline = Instant::now() + d.to_std();
                while Instant::now() < deadline {
                    if ctx.stopped() {
                        return stats;
                    }
                    std::hint::spin_loop();
                    ctx.checkpoint();
                }
                stats.completions += 1;
                let response = now_fn(epoch).since(last_wake);
                stats.response_ns_total += response.as_nanos();
                stats.responses += 1;
            }
            Phase::Block(d) => {
                ctx.block_for(d);
                last_wake = now_fn(epoch);
            }
            Phase::BlockUntil(t) => {
                let now = now_fn(epoch);
                if t > now {
                    ctx.block_for(t.since(now));
                }
                last_wake = now_fn(epoch);
            }
            Phase::Exit => return stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, RtConfig};
    use crossbeam::channel;
    use sfs_core::sfs::Sfs;
    use sfs_core::task::weight;
    use sfs_workloads::{BehaviorSpec, FiniteLoop};

    #[test]
    fn finite_loop_completes_and_exits() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            Box::new(Sfs::new(1)),
        );
        let epoch = Instant::now();
        let (tx, rx) = channel::bounded(1);
        let h = ex.spawn("job", weight(1), move |ctx| {
            let b = Box::new(FiniteLoop::new(Duration::from_millis(20)));
            let st = drive(ctx, b, epoch);
            let _ = tx.send(st);
        });
        ex.wait();
        h.join();
        let st = rx.recv().unwrap();
        assert_eq!(st.completions, 1);
    }

    #[test]
    fn interact_records_responses() {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                ..RtConfig::default()
            },
            Box::new(Sfs::new(1)),
        );
        let epoch = Instant::now();
        let (tx, rx) = channel::bounded(1);
        let spec = BehaviorSpec::Interact {
            think: Duration::from_millis(5),
            burst: Duration::from_millis(1),
        };
        let h = ex.spawn("interact", weight(1), move |ctx| {
            let b = spec.build(1);
            let st = drive(ctx, b, epoch);
            let _ = tx.send(st);
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        ex.stop();
        ex.wait();
        h.join();
        let st = rx.recv().unwrap();
        assert!(st.completions >= 3, "completions: {}", st.completions);
        assert!(st.mean_response().is_some());
    }
}
