//! # sfs-rt — a userspace scheduler over real OS threads
//!
//! The second substrate of the reproduction (the first is the
//! deterministic simulator in `sfs-sim`): real OS threads gated by `p`
//! *virtual CPUs*, multiplexed by any `sfs-core` scheduling policy.
//! Preemption is cooperative at checkpoints, driven by a quantum timer
//! thread — the userspace analogue of the kernel's timer interrupt.
//!
//! This substrate exists for two reasons:
//!
//! 1. to demonstrate the policies scheduling *actual* concurrent
//!    threads (the quickstart example runs here), and
//! 2. to measure real scheduling overheads for Table 1 and Fig. 7 via
//!    [`microbench`] — lock acquisition, run-queue manipulation and
//!    park/unpark handoffs are all real costs here, preserving the
//!    relative SFS vs time-sharing comparison of the paper.
//!
//! ```
//! use sfs_core::policy::PolicySpec;
//! use sfs_core::task::weight;
//! use sfs_rt::{Executor, RtConfig};
//!
//! let ex = Executor::new(
//!     RtConfig { cpus: 2, ..RtConfig::default() },
//!     PolicySpec::sfs().build(2),
//! );
//! let h = ex.spawn("hello", weight(1), |ctx| {
//!     for _ in 0..1000 {
//!         ctx.checkpoint();
//!     }
//! });
//! ex.wait();
//! h.join();
//! ```

pub mod behavior_driver;
pub mod executor;
pub mod microbench;

pub use behavior_driver::{drive, drive_recording, drive_recording_until, DriveRecord, DriveStats};
pub use executor::{Executor, RtConfig, TaskCtx, TaskHandle};
pub use microbench::{checkpoint_cost, ctx_switch_latency, spawn_cost};
