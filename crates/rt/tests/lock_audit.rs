//! Lock-order audit pass over the live executor. Only compiled under
//! the `lock-audit` feature:
//!
//! ```text
//! cargo test -p sfs-rt --features lock-audit
//! ```
//!
//! Every `OrderedMutex` acquisition in the run is rank-checked (a
//! violation panics at the exact wrong lock) and recorded as
//! `held → acquired` edges in a global graph. This test drives the
//! sharded executor through its interesting lock flows — placement,
//! cross-shard stealing, timed sleeps, token blocking + wakeup,
//! watchdog/rebalance timer work, shutdown — then asserts the
//! *observed* graph is acyclic and exports it as the DOT figure the
//! README embeds (`results/lock_order.dot`).
#![cfg(feature = "lock-audit")]

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use sfs_analyze::lockorder::{acquisition_edges, check_acyclic, rank, reset_audit, to_dot};
use sfs_core::policy::PolicySpec;
use sfs_core::task::weight;
use sfs_core::time::Duration;
use sfs_rt::{Executor, RtConfig, TaskCtx};

fn spin(ctx: &TaskCtx) {
    while !ctx.stopped() {
        std::hint::spin_loop();
        ctx.checkpoint();
    }
}

#[test]
fn observed_lock_graph_is_acyclic_across_executor_flows() {
    reset_audit();

    // Sharded SFS over 4 vCPUs: two shards behind separate locks, the
    // balancer in the global section, periodic surplus rebalance on
    // the timer thread — the full lock hierarchy in play.
    let spec = PolicySpec::sfs()
        .with_quantum(Duration::from_millis(1))
        .with_shards(2)
        .with_rebalance_every(Duration::from_millis(5));
    let ex = Executor::from_spec(
        RtConfig {
            cpus: 4,
            timer_interval: Duration::from_micros(200),
        },
        &spec,
    );

    // Spinners keep all CPUs busy so quantum expiry, preemption and
    // cross-shard steals actually happen.
    let spinners: Vec<_> = (0..6)
        .map(|i| ex.spawn(&format!("spin{i}"), weight(1 + i as u64 % 3), spin))
        .collect();

    // Sleepers exercise the timed-wait path (block under shard lock,
    // wake via the timer thread's global/balancer section).
    let sleepers: Vec<_> = (0..2)
        .map(|i| {
            ex.spawn(&format!("sleep{i}"), weight(1), |ctx| {
                for _ in 0..4 {
                    ctx.block_for(Duration::from_millis(5));
                }
            })
        })
        .collect();

    // A token-blocked task plus its waker: block_on_token parks on the
    // task's leaf `granted` lock; wake_task re-places the sleeper
    // through the global section.
    let token = Arc::new(AtomicBool::new(false));
    let t = Arc::clone(&token);
    let blocked = ex.spawn("blocked", weight(1), move |ctx| {
        ctx.block_on_token(&t);
    });
    let blocked_id = blocked.id();
    let t = Arc::clone(&token);
    let waker = ex.spawn("waker", weight(1), move |ctx| {
        ctx.block_for(Duration::from_millis(10));
        t.store(true, std::sync::atomic::Ordering::Release);
        ctx.wake_task(blocked_id);
    });

    // Let the timer thread run several watchdog scans and rebalances.
    std::thread::sleep(std::time::Duration::from_millis(120));
    ex.stop();
    ex.wait();
    for h in sleepers.into_iter().chain([blocked, waker]) {
        h.join();
    }
    for h in spinners {
        h.join();
    }

    let edges = acquisition_edges();
    assert!(
        !edges.is_empty(),
        "the audit must have observed nested acquisitions"
    );

    // The edges the executor's documented flows are built on. Their
    // presence proves the audit watched the real paths, not a no-op
    // run.
    for expected in [
        (rank::GLOBAL, rank::shard(0)),   // placement / rebalance / wake
        (rank::shard(0), rank::shard(1)), // two-lock migration, ascending
        (rank::shard(0), rank::GRANTED),  // grant/revoke under shard lock
    ] {
        assert!(
            edges.contains(&expected),
            "missing hierarchy edge {} -> {} in observed graph {:?}",
            expected.0,
            expected.1,
            edges
        );
    }

    // The point of the exercise: no cycle anywhere in what actually
    // ran.
    if let Err(cycle) = check_acyclic(&edges) {
        panic!("lock-order cycle observed: {}", cycle.join(" -> "));
    }

    // Export the observed graph for the README. Best-effort: the test
    // must not depend on the results directory existing.
    let dot = to_dot(&edges);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/lock_order.dot");
    if out.parent().is_some_and(std::path::Path::exists) {
        let _ = std::fs::write(&out, &dot);
    }
    assert!(dot.contains("\"global\" -> \"shard\""));
}
