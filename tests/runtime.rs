//! Integration tests for the real-thread substrate: the same policies
//! that drive the simulator must schedule actual OS threads with the
//! same qualitative outcomes.

use std::time::Instant;

use sfs::prelude::*;
use sfs::rt::drive;

fn rt_sfs(cpus: u32) -> Executor {
    Executor::new(
        RtConfig {
            cpus,
            timer_interval: Duration::from_micros(250),
        },
        PolicySpec::sfs()
            .with_quantum(Duration::from_millis(2))
            .build(cpus),
    )
}

fn spin(ctx: &TaskCtx) {
    while !ctx.stopped() {
        std::hint::spin_loop();
        ctx.checkpoint();
    }
}

#[test]
fn real_threads_track_weights() {
    let ex = rt_sfs(1);
    let handles: Vec<_> = [1u64, 2, 4]
        .iter()
        .map(|&w| ex.spawn(&format!("w{w}"), weight(w), spin))
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(600));
    ex.stop();
    ex.wait();
    let s: Vec<f64> = handles.iter().map(|h| h.service().as_secs_f64()).collect();
    let r21 = s[1] / s[0];
    let r42 = s[2] / s[1];
    assert!((1.4..3.0).contains(&r21), "w2/w1 = {r21:.2} ({s:?})");
    assert!((1.4..3.0).contains(&r42), "w4/w2 = {r42:.2} ({s:?})");
}

#[test]
fn infeasible_weight_clamped_on_real_threads() {
    // 1:100 on two virtual CPUs: readjustment clamps the heavy task to
    // one CPU, so both should receive roughly equal service.
    let ex = rt_sfs(2);
    let a = ex.spawn("light", weight(1), spin);
    let b = ex.spawn("heavy", weight(100), spin);
    std::thread::sleep(std::time::Duration::from_millis(400));
    ex.stop();
    ex.wait();
    let ratio = b.service().as_secs_f64() / a.service().as_secs_f64().max(1e-9);
    assert!(
        (0.6..1.7).contains(&ratio),
        "expected ≈1:1 after clamping, got {ratio:.2}"
    );
}

#[test]
fn behavior_driver_runs_paper_workloads_on_threads() {
    // An MPEG decoder model on real threads against a compile job:
    // the decoder (large weight ⇒ one full virtual CPU) keeps its rate.
    let ex = rt_sfs(2);
    let epoch = Instant::now();
    let (tx, rx) = std::sync::mpsc::channel();
    let decoder = ex.spawn("mpeg", weight(10), move |ctx| {
        let spec = BehaviorSpec::Mpeg {
            fps: 30,
            frame_cost: Duration::from_millis(3),
        };
        let stats = drive(ctx, spec.build(1), epoch);
        let _ = tx.send(stats);
    });
    let cc = ex.spawn("cc", weight(1), spin);
    std::thread::sleep(std::time::Duration::from_millis(700));
    ex.stop();
    ex.wait();
    decoder.join();
    cc.join();
    let stats = rx.recv().expect("decoder stats");
    // ~0.7 s at 30 fps ⇒ ~21 frames; allow generous slack for CI boxes.
    assert!(
        stats.completions >= 12,
        "decoder managed only {} frames",
        stats.completions
    );
}

#[test]
fn timeshare_vs_sfs_weight_sensitivity_end_to_end() {
    // The same two-task workload under both policies: SFS must honour
    // the 4:1 weights; time sharing must not.
    let run = |sched: Box<dyn Scheduler>| -> f64 {
        let ex = Executor::new(
            RtConfig {
                cpus: 1,
                timer_interval: Duration::from_micros(250),
            },
            sched,
        );
        let a = ex.spawn("w1", weight(1), spin);
        let b = ex.spawn("w4", weight(4), spin);
        std::thread::sleep(std::time::Duration::from_millis(500));
        ex.stop();
        ex.wait();
        b.service().as_secs_f64() / a.service().as_secs_f64().max(1e-9)
    };
    let sfs_ratio = run(PolicySpec::sfs()
        .with_quantum(Duration::from_millis(2))
        .build(1));
    let ts_ratio = run(PolicySpec::time_sharing().with_ticks(1).build(1));
    assert!(sfs_ratio > 2.5, "SFS ratio {sfs_ratio:.2}");
    assert!(ts_ratio < 2.0, "time sharing ratio {ts_ratio:.2}");
    assert!(sfs_ratio > ts_ratio, "{sfs_ratio:.2} vs {ts_ratio:.2}");
}

#[test]
fn substrate_parity_sim_vs_rt() {
    // The *same* scenario, expressed once, runs through the Experiment
    // front-end on both substrates and must produce the same 3:1 share
    // split (loose tolerance for the real-thread run).
    let policy: PolicySpec = "sfs:quantum=2ms".parse().unwrap();
    let cfg = SimConfig {
        cpus: 1,
        duration: Duration::from_millis(600),
        ctx_switch: Duration::from_micros(5),
        sample_every: Duration::from_millis(100),
        track_gms: false,
        seed: 21,
        lean: false,
    };
    let scenario = Scenario::new("parity", cfg)
        .task(TaskSpec::new("a", 3, BehaviorSpec::Inf))
        .task(TaskSpec::new("b", 1, BehaviorSpec::Inf));

    let sim_rep = Experiment::new(scenario.clone()).run(&policy).unwrap();
    let rt_rep = Experiment::on(
        scenario,
        RtSubstrate {
            timer_interval: Duration::from_micros(250),
        },
    )
    .run(&policy)
    .unwrap();

    let ratio = |rep: &RunReport| {
        rep.task("a").unwrap().service.as_secs_f64()
            / rep.task("b").unwrap().service.as_secs_f64().max(1e-9)
    };
    let (sim_ratio, rt_ratio) = (ratio(&sim_rep), ratio(&rt_rep));
    assert_eq!(sim_rep.substrate, "sim");
    assert_eq!(rt_rep.substrate, "rt");
    assert!((sim_ratio - 3.0).abs() < 0.05, "sim ratio {sim_ratio:.2}");
    assert!(
        (rt_ratio / sim_ratio - 1.0).abs() < 0.45,
        "substrates disagree: sim {sim_ratio:.2} vs rt {rt_ratio:.2}"
    );
}
