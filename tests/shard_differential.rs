//! Differential test: sharded SFS vs global SFS under multi-CPU churn.
//!
//! Sharding trades exact global surplus ordering for per-shard
//! independence, so — unlike the bucket-queue differential, which pins
//! decision-for-decision equality — the contract here is *bounded
//! divergence* plus *exact conservation*:
//!
//! * **Conservation.** After every operation both schedulers hold the
//!   same task set with the same raw weights; the sharded scheduler's
//!   internal partition (balancer load sums, per-shard policies, the
//!   published feasibility snapshot) passes its invariant checks; and
//!   no task is lost or duplicated across placement/steal/rebalance
//!   migrations.
//! * **Share tracking.** After the churn settles, each task's service
//!   share over a long steady window stays within the documented
//!   rebalance bound of the global scheduler's: greedy rebalance stops
//!   only when no single migration reduces the worse per-CPU load, so
//!   per-CPU adjusted-weight loads differ by at most one task weight,
//!   and a task's share error is bounded by that relative load gap.
//!   With the generous task/weight mixes generated here that is well
//!   under 0.10 absolute share.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sfs::prelude::*;

const Q: Duration = Duration::from_millis(1);

/// One scheduler being driven through the churn (global or sharded).
/// Decisions legitimately diverge between the two, so each driver owns
/// its own CPU slots and bookkeeping; ops are addressed by task id.
struct Driver {
    sched: Box<dyn Scheduler>,
    running: Vec<Option<TaskId>>,
    now: Time,
    service: BTreeMap<TaskId, u64>,
}

impl Driver {
    fn new(spec: &str, cpus: u32) -> Driver {
        let spec: PolicySpec = spec.parse().expect("driver spec");
        Driver {
            sched: spec.build(cpus),
            running: vec![None; cpus as usize],
            now: Time::ZERO,
            service: BTreeMap::new(),
        }
    }

    fn fill(&mut self) {
        for c in 0..self.running.len() {
            if self.running[c].is_none() {
                self.running[c] = self.sched.pick_next(CpuId(c as u32), self.now);
            }
        }
    }

    /// One lockstep quantum: fill every CPU, then requeue everything.
    fn round(&mut self) {
        self.fill();
        self.now += Q;
        for c in 0..self.running.len() {
            if let Some(id) = self.running[c].take() {
                *self.service.entry(id).or_default() += 1;
                self.sched
                    .put_prev(id, Q, SwitchReason::Preempted, self.now);
            }
        }
    }

    /// Runs until `id` is dispatched, then blocks it mid-quantum (the
    /// other CPUs keep their tasks through the partial quantum).
    /// Bounded by the proportional-share guarantee itself: a ready
    /// task is served within ~Φ/φ quanta.
    fn block(&mut self, id: TaskId) {
        for _ in 0..4_000 {
            self.fill();
            if let Some(c) = self.running.iter().position(|r| *r == Some(id)) {
                self.running[c] = None;
                self.sched
                    .put_prev(id, Q / 2, SwitchReason::Blocked, self.now);
                return;
            }
            // Not dispatched this quantum: finish it and try again.
            self.now += Q;
            for c in 0..self.running.len() {
                if let Some(other) = self.running[c].take() {
                    *self.service.entry(other).or_default() += 1;
                    self.sched
                        .put_prev(other, Q, SwitchReason::Preempted, self.now);
                }
            }
        }
        panic!("task {id} starved: never scheduled in 4000 quanta");
    }

    fn wake(&mut self, id: TaskId) {
        self.sched.wake(id, self.now);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Spawn(u64),
    Block(usize),
    Wake(usize),
    Reweigh(usize, u64),
    KillBlocked(usize),
    Run(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..9).prop_map(Op::Spawn),
        (0usize..64).prop_map(Op::Block),
        (0usize..64).prop_map(Op::Wake),
        ((0usize..64), (1u64..9)).prop_map(|(i, w)| Op::Reweigh(i, w)),
        (0usize..64).prop_map(Op::KillBlocked),
        (1u64..16).prop_map(Op::Run),
    ]
}

fn drive(cpus: u32, shards: u32, ops: &[Op], settle: u64) {
    let global = &mut Driver::new("sfs:quantum=1ms", cpus);
    let sharded = &mut Driver::new(
        &format!("sfs:quantum=1ms,shards={shards},rebalance=8ms"),
        cpus,
    );
    // Harness-level truth about the logical task set, shared by both.
    let mut next_id = 0u64;
    let mut live: BTreeMap<TaskId, u64> = BTreeMap::new();
    let mut blocked: Vec<TaskId> = Vec::new();

    let mut apply = |both: &mut [&mut Driver; 2],
                     live: &mut BTreeMap<TaskId, u64>,
                     blocked: &mut Vec<TaskId>,
                     op: &Op| {
        match op {
            Op::Spawn(w) => {
                next_id += 1;
                let id = TaskId(next_id);
                for d in both.iter_mut() {
                    d.sched.attach(id, weight(*w), d.now);
                }
                live.insert(id, *w);
            }
            Op::Block(i) => {
                let runnable: Vec<TaskId> = live
                    .keys()
                    .filter(|id| !blocked.contains(id))
                    .copied()
                    .collect();
                // Keep at least one runnable task so `block` terminates.
                if runnable.len() > 1 {
                    let id = runnable[i % runnable.len()];
                    for d in both.iter_mut() {
                        d.block(id);
                    }
                    blocked.push(id);
                }
            }
            Op::Wake(i) => {
                if !blocked.is_empty() {
                    let id = blocked.remove(i % blocked.len());
                    for d in both.iter_mut() {
                        d.wake(id);
                    }
                }
            }
            Op::Reweigh(i, w) => {
                if !live.is_empty() {
                    let id = *live.keys().nth(i % live.len()).expect("non-empty");
                    for d in both.iter_mut() {
                        d.sched.set_weight(id, weight(*w), d.now);
                    }
                    live.insert(id, *w);
                }
            }
            Op::KillBlocked(i) => {
                if !blocked.is_empty() {
                    let id = blocked.remove(i % blocked.len());
                    for d in both.iter_mut() {
                        d.sched.detach(id, d.now);
                        d.service.remove(&id);
                    }
                    live.remove(&id);
                }
            }
            Op::Run(k) => {
                for d in both.iter_mut() {
                    for _ in 0..*k {
                        d.round();
                    }
                }
            }
        }
    };

    let mut both = [global, sharded];
    for op in ops {
        apply(&mut both, &mut live, &mut blocked, op);
        // Conservation after every op: same task set, same raw
        // weights, internally consistent partition.
        let [g, s] = &both;
        assert_eq!(g.sched.nr_tasks(), live.len(), "global lost a task");
        assert_eq!(s.sched.nr_tasks(), live.len(), "sharded lost a task");
        for (&id, &w) in &live {
            assert_eq!(g.sched.weight_of(id), Weight::new(w), "global weight {id}");
            assert_eq!(s.sched.weight_of(id), Weight::new(w), "sharded weight {id}");
        }
        s.sched.check_invariants();
        g.sched.check_invariants();
    }

    // Make everything runnable and let shares settle over a long
    // steady window.
    for id in blocked.drain(..) {
        for d in &mut both {
            d.wake(id);
        }
    }
    if live.is_empty() {
        return;
    }
    let before: [BTreeMap<TaskId, u64>; 2] = [both[0].service.clone(), both[1].service.clone()];
    for d in &mut both {
        for _ in 0..settle {
            d.round();
        }
    }
    let [g, s] = &both;
    s.sched.check_invariants();

    // Work conservation over the settle window: both machines served
    // min(runnable, cpus) tasks per quantum, and the runnable set was
    // identical, so the totals match exactly.
    let gain = |d: &Driver, before: &BTreeMap<TaskId, u64>| -> BTreeMap<TaskId, u64> {
        live.keys()
            .map(|&id| {
                let b = before.get(&id).copied().unwrap_or(0);
                (id, d.service.get(&id).copied().unwrap_or(0) - b)
            })
            .collect()
    };
    let (g_gain, s_gain) = (gain(g, &before[0]), gain(s, &before[1]));
    let g_total: u64 = g_gain.values().sum();
    let s_total: u64 = s_gain.values().sum();
    assert_eq!(g_total, s_total, "sharding lost work to idle CPUs");

    // Per-task share deviation within the rebalance bound.
    for (&id, &gq) in &g_gain {
        let g_share = gq as f64 / g_total.max(1) as f64;
        let s_share = s_gain[&id] as f64 / s_total.max(1) as f64;
        assert!(
            (g_share - s_share).abs() <= 0.10,
            "task {id}: sharded share {s_share:.3} vs global {g_share:.3} \
             (gains {s_gain:?} vs {g_gain:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two shards over four CPUs: churn, then a steady window.
    #[test]
    fn sharded_tracks_global_4cpu_2shards(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        drive(4, 2, &ops, 3_000);
    }

    /// Per-CPU shards (the fully sharded machine).
    #[test]
    fn sharded_tracks_global_4cpu_4shards(
        ops in proptest::collection::vec(op_strategy(), 1..30),
    ) {
        drive(4, 4, &ops, 3_000);
    }
}

/// A deterministic soak exercising the clamp boundary across shards:
/// heavy tasks keep the global feasibility snapshot churning while
/// blocks/wakes force placement decisions.
#[test]
fn sharded_soak_with_infeasible_weights() {
    let mut ops = Vec::new();
    for i in 0..12u64 {
        ops.push(Op::Spawn(1 + (i * 7) % 8));
    }
    for round in 0..60u64 {
        ops.push(Op::Run(8));
        match round % 5 {
            0 => ops.push(Op::Reweigh(round as usize, 1 + (round * 11) % 8)),
            1 => ops.push(Op::Block(round as usize)),
            2 => ops.push(Op::Wake(round as usize)),
            3 => ops.push(Op::Spawn(1 + round % 8)),
            _ => ops.push(Op::KillBlocked(round as usize)),
        }
    }
    drive(4, 2, &ops, 4_000);
}
