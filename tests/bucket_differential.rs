//! Differential test for the bucket-queue SFS rewrite.
//!
//! The per-weight-class bucket queue replaced the §3.1 resort-based
//! surplus queue. The rewrite is a pure data-structure change: the
//! scheduling *decisions* must be identical. This suite drives the
//! production `Sfs` and a deliberately naive reference implementation in
//! lockstep through randomized churn (arrivals, departures, blocking,
//! wakeups, reweighting, variable quanta, multi-CPU picks) and asserts
//! pick-for-pick and tag-for-tag equality.
//!
//! The reference model is the semantics the old full-resort path
//! computed: on every pick, recompute every ready thread's surplus
//! `α_i = φ_i · (S_i − v)` from live tags and take the minimum under
//! the (surplus, start tag, id) tie-break. No queues, no incremental
//! state — just the definition from §2.3.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sfs::prelude::*;
use sfs_core::feasible::FeasibleWeights;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefState {
    Ready,
    Running,
    Blocked,
}

#[derive(Debug)]
struct RefTask {
    weight: Weight,
    start: Fixed,
    finish: Fixed,
    state: RefState,
}

/// The reference: exact SFS by direct evaluation of the §2.3 formulas.
struct RefSfs {
    tasks: BTreeMap<TaskId, RefTask>,
    feas: FeasibleWeights,
    v: Fixed,
}

impl RefSfs {
    fn new(cpus: u32) -> RefSfs {
        RefSfs {
            tasks: BTreeMap::new(),
            feas: FeasibleWeights::new(cpus, true),
            v: Fixed::ZERO,
        }
    }

    /// Minimum start tag over runnable threads, or the stored (frozen)
    /// virtual time when idle (§2.3).
    fn current_v(&self) -> Fixed {
        self.tasks
            .values()
            .filter(|t| t.state != RefState::Blocked)
            .map(|t| t.start)
            .min()
            .unwrap_or(self.v)
    }

    fn attach(&mut self, id: TaskId, w: Weight) {
        let v = self.current_v();
        self.tasks.insert(
            id,
            RefTask {
                weight: w,
                start: v,
                finish: v,
                state: RefState::Ready,
            },
        );
        self.feas.insert(id, w);
    }

    fn detach(&mut self, id: TaskId) {
        let t = self.tasks.remove(&id).expect("detach unknown");
        if t.state != RefState::Blocked {
            self.feas.remove(id, t.weight);
        }
    }

    fn set_weight(&mut self, id: TaskId, w: Weight) {
        let t = self.tasks.get_mut(&id).expect("reweigh unknown");
        let old = t.weight;
        if old == w {
            return;
        }
        t.weight = w;
        if t.state != RefState::Blocked {
            self.feas.set_weight(id, old, w);
        }
    }

    fn wake(&mut self, id: TaskId) {
        let v = self.current_v();
        let t = self.tasks.get_mut(&id).expect("wake unknown");
        assert_eq!(t.state, RefState::Blocked);
        t.start = t.finish.max(v);
        t.state = RefState::Ready;
        let w = self.tasks[&id].weight;
        self.feas.insert(id, w);
    }

    fn pick_next(&mut self) -> Option<TaskId> {
        if !self.tasks.values().any(|t| t.state != RefState::Blocked) {
            return None;
        }
        self.v = self.current_v();
        let v = self.v;
        let best = self
            .tasks
            .iter()
            .filter(|(_, t)| t.state == RefState::Ready)
            .map(|(&id, t)| {
                let phi = self.feas.phi(id, t.weight);
                (phi.mul_fixed(t.start - v), t.start, id)
            })
            .min()?;
        let id = best.2;
        self.tasks.get_mut(&id).unwrap().state = RefState::Running;
        Some(id)
    }

    fn put_prev(&mut self, id: TaskId, ran: Duration, reason: SwitchReason) {
        let w = self.tasks[&id].weight;
        let phi = self.feas.phi(id, w);
        let t = self.tasks.get_mut(&id).unwrap();
        assert_eq!(t.state, RefState::Running);
        let f = t.start + phi.div_into_int(ran.as_nanos());
        t.finish = f;
        match reason {
            SwitchReason::Preempted | SwitchReason::Yielded => {
                t.start = f;
                t.state = RefState::Ready;
            }
            SwitchReason::Blocked => {
                t.state = RefState::Blocked;
                self.feas.remove(id, w);
                self.freeze_v_if_idle(f);
            }
            SwitchReason::Exited => {
                self.tasks.remove(&id);
                self.feas.remove(id, w);
                self.freeze_v_if_idle(f);
            }
        }
    }

    fn freeze_v_if_idle(&mut self, finish: Fixed) {
        if !self.tasks.values().any(|t| t.state != RefState::Blocked) {
            self.v = finish;
        }
    }
}

/// One random scheduler operation.
#[derive(Debug, Clone)]
enum Op {
    Spawn(u64),
    KillReady(usize),
    BlockRunning(usize, u64),
    WakeOne(usize),
    Reweigh(usize, u64),
    Tick(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..60).prop_map(Op::Spawn),
        (0usize..64).prop_map(Op::KillReady),
        ((0usize..64), (0u64..900)).prop_map(|(i, us)| Op::BlockRunning(i, us)),
        (0usize..64).prop_map(Op::WakeOne),
        ((0usize..64), (1u64..60)).prop_map(|(i, w)| Op::Reweigh(i, w)),
        (1u64..4).prop_map(Op::Tick),
    ]
}

/// Drives `Sfs` and `RefSfs` through the same op sequence on a lockstep
/// machine, asserting identical picks on every dispatch and identical
/// tags after every op.
fn lockstep(cpus: u32, ops: &[Op]) {
    let mut sfs = Sfs::with_config(
        cpus,
        SfsConfig {
            quantum: Duration::from_millis(1),
            ..SfsConfig::default()
        },
    );
    let mut model = RefSfs::new(cpus);
    let mut now = Time::ZERO;
    let mut next_id = 0u64;
    let mut ready: Vec<TaskId> = Vec::new();
    let mut blocked: Vec<TaskId> = Vec::new();
    let mut running: Vec<Option<TaskId>> = vec![None; cpus as usize];

    let fill = |sfs: &mut Sfs,
                model: &mut RefSfs,
                running: &mut Vec<Option<TaskId>>,
                ready: &mut Vec<TaskId>,
                now: Time| {
        for (c, slot) in running.iter_mut().enumerate() {
            if slot.is_none() {
                let got = sfs.pick_next(CpuId(c as u32), now);
                let want = model.pick_next();
                assert_eq!(got, want, "pick diverged on cpu{c}");
                if let Some(id) = got {
                    ready.retain(|&r| r != id);
                    *slot = Some(id);
                }
            }
        }
    };

    for op in ops {
        match op {
            Op::Spawn(w) => {
                next_id += 1;
                let id = TaskId(next_id);
                sfs.attach(id, weight(*w), now);
                model.attach(id, weight(*w));
                ready.push(id);
            }
            Op::KillReady(i) => {
                if !ready.is_empty() {
                    let id = ready.remove(i % ready.len());
                    sfs.detach(id, now);
                    model.detach(id);
                }
            }
            Op::BlockRunning(i, used_us) => {
                let on: Vec<usize> = (0..running.len())
                    .filter(|&c| running[c].is_some())
                    .collect();
                if !on.is_empty() {
                    let c = on[i % on.len()];
                    let id = running[c].take().unwrap();
                    let used = Duration::from_micros(*used_us);
                    sfs.put_prev(id, used, SwitchReason::Blocked, now);
                    model.put_prev(id, used, SwitchReason::Blocked);
                    blocked.push(id);
                }
            }
            Op::WakeOne(i) => {
                if !blocked.is_empty() {
                    let id = blocked.remove(i % blocked.len());
                    sfs.wake(id, now);
                    model.wake(id);
                    ready.push(id);
                }
            }
            Op::Reweigh(i, w) => {
                let mut all: Vec<TaskId> = ready.clone();
                all.extend(blocked.iter().copied());
                all.extend(running.iter().flatten().copied());
                if !all.is_empty() {
                    all.sort_unstable();
                    let id = all[i % all.len()];
                    sfs.set_weight(id, weight(*w), now);
                    model.set_weight(id, weight(*w));
                }
            }
            Op::Tick(q_ms) => {
                let q = Duration::from_millis(*q_ms);
                fill(&mut sfs, &mut model, &mut running, &mut ready, now);
                now += q;
                for slot in &mut running {
                    if let Some(id) = slot.take() {
                        sfs.put_prev(id, q, SwitchReason::Preempted, now);
                        model.put_prev(id, q, SwitchReason::Preempted);
                        ready.push(id);
                    }
                }
            }
        }
        fill(&mut sfs, &mut model, &mut running, &mut ready, now);
        sfs.check_invariants();

        // Tag state must match exactly, not just the pick sequence.
        assert_eq!(sfs.nr_tasks(), model.tasks.len(), "task sets diverged");
        for (&id, t) in &model.tasks {
            let tags = sfs.tags_of(id).expect("model has a task sfs lost");
            assert_eq!(tags.start_tag, t.start, "start tag diverged for {id}");
            assert_eq!(tags.finish_tag, t.finish, "finish tag diverged for {id}");
        }
        assert_eq!(
            sfs.virtual_time(),
            Some(model.current_v()),
            "virtual time diverged"
        );
    }
    // The whole run must have exercised the bucket path without a single
    // bulk re-sort — that is the point of the rewrite.
    assert_eq!(sfs.stats().full_resorts, 0);
}

proptest! {
    /// Multi-processor churn: the bucketed exact path and the
    /// full-recompute reference make identical decisions.
    #[test]
    fn bucketed_sfs_matches_full_recompute_smp(
        cpus in 1u32..4,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        lockstep(cpus, &ops);
    }

    /// Uniprocessor degeneration under churn: with one CPU the same
    /// lockstep holds (and SFS degenerates to SFQ — covered separately
    /// by the decision-equality unit test in sfs-core).
    #[test]
    fn bucketed_sfs_matches_full_recompute_up(
        ops in proptest::collection::vec(op_strategy(), 1..160),
    ) {
        lockstep(1, &ops);
    }
}

/// A long deterministic soak with heavy weight churn: many distinct
/// weight classes, constant clamping boundary traffic on 2 CPUs.
#[test]
fn bucketed_sfs_matches_reference_deterministic_soak() {
    let mut ops = Vec::new();
    for i in 0..40u64 {
        ops.push(Op::Spawn(1 + (i * 13) % 29));
    }
    for round in 0..400u64 {
        ops.push(Op::Tick(1 + round % 3));
        match round % 7 {
            0 => ops.push(Op::Reweigh(round as usize, 1 + (round * 11) % 40)),
            1 => ops.push(Op::BlockRunning(round as usize, (round * 97) % 800)),
            2 => ops.push(Op::WakeOne(round as usize)),
            3 => ops.push(Op::Spawn(1 + round % 17)),
            4 => ops.push(Op::KillReady(round as usize)),
            _ => {}
        }
    }
    lockstep(2, &ops);
}
