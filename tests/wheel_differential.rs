//! Differential tests for the mega-scale event engine rewrite.
//!
//! Two data-path changes must be *invisible* to scheduling behavior:
//!
//! 1. The simulator's event queue moved from `BinaryHeap<Reverse<(time,
//!    seq)>>` to a hierarchical timing wheel. The wheel's module docs
//!    promise bit-for-bit the heap's pop order under the simulator's
//!    caller contract (pushes never go into the past, `seq` is a global
//!    increasing counter). The lockstep tests here pin that promise
//!    against the heap itself, across every delta scale the wheel
//!    treats differently: same-tick (delta 0), within one level-0
//!    window (< 64 ns), level-1/2 spans, and far-future times that
//!    cascade down four or more levels.
//!
//! 2. The engine now applies same-tick event runs through
//!    `arrive_batch` / `wake_batch`. Those entry points must be
//!    *event-equivalent* to the per-item `attach_tenant` / `wake`
//!    calls they replace: driving two scheduler instances through the
//!    same script — one per-item, one batched — must produce identical
//!    pick sequences, virtual time, runnable counts, and adjusted
//!    weights, for both flat SFS and hierarchical multi-tenant SFS.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use sfs::sim::wheel::TimingWheel;
use sfs_core::policy::{GroupSpec, PolicySpec};
use sfs_core::sched::{Scheduler, SwitchReason};
use sfs_core::task::{weight, CpuId, TaskId, TenantId};
use sfs_core::time::{Duration, Time};

// ---------------------------------------------------------------------
// Part 1: timing wheel vs binary heap, in lockstep.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum WheelOp {
    /// Push at `now + delta`, where `now` is the last popped time.
    Push(u64),
    Pop,
    Peek,
}

/// Deltas at every scale the wheel handles differently: same tick,
/// within the current level-0 window, across level-1/2 slot
/// boundaries, and far-future times that live four or more levels up.
fn wheel_op() -> impl Strategy<Value = WheelOp> {
    prop_oneof![
        Just(WheelOp::Push(0)),
        (0u64..64).prop_map(WheelOp::Push),
        (0u64..4096).prop_map(WheelOp::Push),
        (0u64..(1 << 18)).prop_map(WheelOp::Push),
        ((1u64 << 30)..(1u64 << 41)).prop_map(WheelOp::Push),
        Just(WheelOp::Pop),
        Just(WheelOp::Pop),
        Just(WheelOp::Pop),
        Just(WheelOp::Peek),
    ]
}

/// Runs one op stream against both queues and asserts equal behavior
/// at every step, then drains both and asserts the tails agree.
fn wheel_lockstep(ops: &[WheelOp]) {
    let mut wheel: TimingWheel<u64> = TimingWheel::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut now = 0u64; // time of the most recent pop
    let mut seq = 0u64; // global event counter
    for op in ops {
        match op {
            WheelOp::Push(delta) => {
                let t = now.saturating_add(*delta);
                wheel.push(t, seq, t);
                heap.push(Reverse((t, seq)));
                seq += 1;
            }
            WheelOp::Pop => {
                let got = wheel.pop().map(|(t, s, payload)| {
                    assert_eq!(t, payload, "payload must travel with its key");
                    (t, s)
                });
                let want = heap.pop().map(|Reverse(k)| k);
                assert_eq!(got, want, "pop diverged after {seq} pushes");
                if let Some((t, _)) = got {
                    now = t;
                }
            }
            WheelOp::Peek => {
                let got = wheel.peek().map(|(t, s, _)| (t, s));
                let want = heap.peek().map(|&Reverse(k)| k);
                assert_eq!(got, want, "peek diverged after {seq} pushes");
            }
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel.is_empty(), heap.is_empty());
    }
    loop {
        let got = wheel.pop().map(|(t, s, _)| (t, s));
        let want = heap.pop().map(|Reverse(k)| k);
        assert_eq!(got, want, "drain diverged");
        if got.is_none() {
            break;
        }
    }
}

proptest! {
    #[test]
    fn wheel_matches_heap_pop_for_pop(
        ops in proptest::collection::vec(wheel_op(), 1..400)
    ) {
        wheel_lockstep(&ops);
    }
}

/// A deterministic long soak: tens of thousands of operations from a
/// seeded generator, far deeper than any single proptest case, so
/// multi-level cascades happen hundreds of times in one run.
#[test]
fn wheel_matches_heap_through_a_long_deterministic_churn() {
    let mut state = 0x243F_6A88_85A3_08D3u64; // arbitrary fixed seed
    let mut next = move || {
        // xorshift64* — deterministic, dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut ops = Vec::with_capacity(50_000);
    for _ in 0..50_000 {
        ops.push(match next() % 9 {
            0 => WheelOp::Push(0),
            1 => WheelOp::Push(next() % 64),
            2 => WheelOp::Push(next() % 4096),
            3 => WheelOp::Push(next() % (1 << 20)),
            4 => WheelOp::Push((1 << 30) + next() % (1 << 40)),
            5..=7 => WheelOp::Pop,
            _ => WheelOp::Peek,
        });
    }
    wheel_lockstep(&ops);
}

// ---------------------------------------------------------------------
// Part 2: batched scheduler entry points vs per-item calls.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Step {
    /// Attach a batch of new tasks: (weight, tenant selector) each.
    Arrive(Vec<(u64, u8)>),
    /// Wake up to N currently blocked tasks, oldest first.
    Wake(u8),
    /// Run N quanta on every CPU; bit k of the mask blocks the tasks
    /// picked in quantum k instead of preempting them.
    Run { quanta: u8, block_mask: u8 },
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        proptest::collection::vec((1u64..8, 0u8..8), 1..12).prop_map(Step::Arrive),
        (1u8..6).prop_map(Step::Wake),
        (1u8..5, 0u8..16).prop_map(|(quanta, block_mask)| Step::Run { quanta, block_mask }),
    ]
}

/// Drives `per_item` with singleton calls and `batched` with the batch
/// entry points through one script, asserting the observable scheduler
/// state never diverges. `tenant_of` maps the script's tenant selector
/// to a policy-appropriate tenant (None for flat SFS).
fn batch_lockstep<S: Scheduler>(
    per_item: &mut S,
    batched: &mut S,
    steps: &[Step],
    tenant_of: impl Fn(u8) -> Option<TenantId>,
) {
    const Q: Duration = Duration::from_millis(10);
    let cpus = per_item.cpus();
    assert_eq!(cpus, batched.cpus());
    let mut now = Time::ZERO;
    let mut next_id = 1u64;
    let mut blocked: Vec<TaskId> = Vec::new();
    let mut attached: Vec<TaskId> = Vec::new();

    let same = |a: &S, b: &S, attached: &[TaskId], when: &str| {
        assert_eq!(a.nr_runnable(), b.nr_runnable(), "nr_runnable after {when}");
        assert_eq!(
            a.virtual_time(),
            b.virtual_time(),
            "virtual time after {when}"
        );
        for &id in attached {
            assert_eq!(
                a.weight_of(id),
                b.weight_of(id),
                "weight of {id} after {when}"
            );
            assert_eq!(
                a.adjusted_weight_of(id),
                b.adjusted_weight_of(id),
                "adjusted weight of {id} after {when}"
            );
            assert_eq!(
                a.tenant_of(id),
                b.tenant_of(id),
                "tenant of {id} after {when}"
            );
        }
        a.check_invariants();
        b.check_invariants();
    };

    for s in steps {
        match s {
            Step::Arrive(specs) => {
                let batch: Vec<(TaskId, _, _)> = specs
                    .iter()
                    .map(|&(w, t)| {
                        let id = TaskId(next_id);
                        next_id += 1;
                        (id, weight(w), tenant_of(t))
                    })
                    .collect();
                for &(id, w, tenant) in &batch {
                    per_item.attach_tenant(id, w, tenant, now);
                    attached.push(id);
                }
                batched.arrive_batch(&batch, now);
                same(per_item, batched, &attached, "arrive");
            }
            Step::Wake(n) => {
                let n = (*n as usize).min(blocked.len());
                let ids: Vec<TaskId> = blocked.drain(..n).collect();
                for &id in &ids {
                    per_item.wake(id, now);
                }
                batched.wake_batch(&ids, now);
                same(per_item, batched, &attached, "wake");
            }
            Step::Run { quanta, block_mask } => {
                for k in 0..*quanta {
                    let mut picked = Vec::new();
                    for c in 0..cpus {
                        let a = per_item.pick_next(CpuId(c), now);
                        let b = batched.pick_next(CpuId(c), now);
                        assert_eq!(a, b, "pick diverged on cpu {c} at {now:?}");
                        if let Some(id) = a {
                            picked.push(id);
                        }
                    }
                    now += Q;
                    let reason = if block_mask & (1 << k) != 0 {
                        SwitchReason::Blocked
                    } else {
                        SwitchReason::Preempted
                    };
                    for id in picked {
                        per_item.put_prev(id, Q, reason, now);
                        batched.put_prev(id, Q, reason, now);
                        if reason == SwitchReason::Blocked {
                            blocked.push(id);
                        }
                    }
                    same(per_item, batched, &attached, "quantum");
                }
            }
        }
    }
}

fn hier_pair(cpus: u32) -> (sfs_core::hier::HierSfs, sfs_core::hier::HierSfs) {
    let spec = PolicySpec::sfs_over(
        [("gold", 4u64), ("silver", 2), ("bronze", 1)]
            .iter()
            .map(|&(n, s)| GroupSpec::new(n, PolicySpec::sfs()).with_share(s)),
    );
    (
        sfs_core::hier::HierSfs::new(cpus, spec.groups()),
        sfs_core::hier::HierSfs::new(cpus, spec.groups()),
    )
}

proptest! {
    #[test]
    fn flat_sfs_batch_calls_equal_per_item_calls(
        steps in proptest::collection::vec(step(), 1..40),
        cpus in 1u32..5,
    ) {
        let mut a = sfs_core::sfs::Sfs::new(cpus);
        let mut b = sfs_core::sfs::Sfs::new(cpus);
        batch_lockstep(&mut a, &mut b, &steps, |_| None);
    }

    #[test]
    fn hierarchical_sfs_batch_calls_equal_per_item_calls(
        steps in proptest::collection::vec(step(), 1..40),
        cpus in 1u32..5,
    ) {
        let (mut a, mut b) = hier_pair(cpus);
        // Selector 0..8 folds onto the three groups, so every group
        // sees multi-task batches and same-batch tenant mixes occur.
        batch_lockstep(&mut a, &mut b, &steps, |t| Some(TenantId(t as u32 % 3)));
    }
}
