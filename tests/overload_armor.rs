//! Overload-armor integration tests: panic isolation on the real-thread
//! substrate, weight conservation when tasks die while blocked, and a
//! chaos differential — random fault scripts against flat and
//! hierarchical SFS with the scheduler's invariants audited after every
//! recovery.

use proptest::prelude::*;
use sfs::prelude::*;

fn quick_cfg(cpus: u32, ms: u64) -> SimConfig {
    SimConfig {
        cpus,
        duration: Duration::from_millis(ms),
        ..SimConfig::default()
    }
}

/// Satellite (a): a panicking task on the rt substrate is reaped, its
/// weight is released, and the survivors converge to their 3:1 split.
#[test]
fn rt_panic_is_isolated_and_survivors_split_correctly() {
    let scenario = Scenario::new("rt-panic", quick_cfg(1, 450))
        .task(TaskSpec::new("bomb", 5, BehaviorSpec::Inf))
        .task(TaskSpec::new("w3", 3, BehaviorSpec::Inf))
        .task(TaskSpec::new("w1", 1, BehaviorSpec::Inf))
        .with_faults(FaultPlan::new().with(Time::from_millis(60), FaultKind::Panic { task: 0 }));
    let rep = Experiment::on(scenario, RtSubstrate::default())
        .run("sfs:quantum=2ms")
        .unwrap();
    assert_eq!(rep.task("bomb").unwrap().fate, TaskFate::Reaped);
    assert_eq!(rep.health.invariant_violations, 0, "{:?}", rep.health);
    // If the bomb's weight 5 leaked, the survivors would keep only
    // 3/9 and 1/9 of the machine instead of 3/4 and 1/4.
    let (s3, s1) = (
        rep.task("w3").unwrap().service.as_secs_f64(),
        rep.task("w1").unwrap().service.as_secs_f64(),
    );
    let ratio = s3 / s1.max(1e-9);
    assert!((1.8..4.8).contains(&ratio), "w3:w1 after reap = {ratio:.2}");
    assert!(
        s3 + s1 > 0.24,
        "survivors must reclaim the bomb's share: {s3:.3}+{s1:.3}s of ~0.39s"
    );
}

/// Satellite (b): killing (detaching or reaping) a *blocked* task must
/// release its weight under every policy — flat, hierarchical, and
/// sharded — and leave the scheduler's books audit-clean.
#[test]
fn kill_while_blocked_conserves_weight_in_every_policy() {
    for spec in [
        "sfs:quantum=1ms",
        "sfs:groups(a=sfs:quantum=1ms,b=sfs:quantum=1ms)",
        "sfs:quantum=1ms,shards=2",
    ] {
        let policy: PolicySpec = spec.parse().unwrap();
        let mut sched = policy.build(2);
        let q = Duration::from_millis(1);
        let mut now = Time::ZERO;
        let (ta, tb) = (sched.bind_tenant("a"), sched.bind_tenant("b"));
        sched.attach_tenant(TaskId(1), weight(4), ta, now);
        sched.attach_tenant(TaskId(2), weight(1), tb, now);
        sched.attach_tenant(TaskId(3), weight(1), tb, now);
        // Run the victim for one quantum, then block it.
        let first = sched.pick_next(CpuId(0), now).expect("work is queued");
        now += q;
        sched.put_prev(first, q, SwitchReason::Blocked, now);
        sched.check_invariants();
        // Kill it while blocked: both exit routes must release weight.
        if first == TaskId(1) {
            sched.detach(first, now);
        } else {
            sched.reap(first, now);
        }
        assert_eq!(sched.weight_of(first), None, "{spec}: victim survived");
        sched.check_invariants();
        // The survivors still schedule; the dead task never reappears.
        let mut seen = Vec::new();
        for i in 0..8u32 {
            if let Some(id) = sched.pick_next(CpuId(i % 2), now) {
                assert_ne!(id, first, "{spec}: killed task was picked again");
                if !seen.contains(&id) {
                    seen.push(id);
                }
                now += q;
                sched.put_prev(id, q, SwitchReason::Preempted, now);
            }
        }
        assert_eq!(seen.len(), 2, "{spec}: a survivor starved after kill");
        sched.check_invariants();
    }
}

/// Runs a fixed 4-task scenario with `plan` injected and audits the
/// resulting report: every fault recovered, zero invariant violations,
/// and no task lost or double-counted.
fn audit_chaos_run(policy: &str, plan: &FaultPlan) {
    let scenario = Scenario::new("chaos-prop", quick_cfg(2, 200))
        .tenant(
            "a",
            [TaskSpec::new("a", 2, BehaviorSpec::Inf).replicated(2)],
        )
        .tenant(
            "b",
            [TaskSpec::new("b", 1, BehaviorSpec::Inf).replicated(2)],
        )
        .with_faults(plan.clone());
    let rep = Experiment::new(scenario).run(policy).unwrap();
    assert_eq!(
        rep.health.faults_recovered, rep.health.faults_injected,
        "{policy}: unrecovered faults with plan {plan}"
    );
    assert_eq!(
        rep.health.invariant_violations, 0,
        "{policy}: invariant violated with plan {plan}"
    );
    // No task lost or double-counted: all four outcomes present, each
    // exactly once, each with a coherent fate.
    assert_eq!(rep.tasks.len(), 4, "{policy}: task lost with plan {plan}");
    let mut names: Vec<&str> = rep.tasks.iter().map(|t| t.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 4, "{policy}: task double-counted");
    for t in &rep.tasks {
        if t.fate == TaskFate::Rejected {
            assert_eq!(t.service, Duration::ZERO, "{policy}: rejected task ran");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite (c): random fault scripts against flat and
    /// hierarchical SFS. Whatever the script does — panics, stalls,
    /// jitter, dropped wakeups, in any order — both schedulers must
    /// recover every fault with audit-clean books and account every
    /// task exactly once.
    #[test]
    fn chaos_differential_flat_vs_hier(seed in 0u64..u64::MAX, count in 1usize..8) {
        let plan = FaultPlan::generate(seed, Time::from_millis(200), 4, 2, count);
        audit_chaos_run("sfs:quantum=2ms", &plan);
        audit_chaos_run("sfs:groups(a*2=sfs:quantum=2ms,b=sfs:quantum=2ms)", &plan);
    }
}
