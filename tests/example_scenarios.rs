//! End-to-end reproductions of the paper's two motivating examples
//! (§1.2), run through the full simulator stack via the `PolicySpec`
//! registry and the `Experiment` front-end.

use sfs::metrics::fairness::starvation;
use sfs::prelude::*;

fn spec(policy: &str) -> PolicySpec {
    policy.parse().expect("valid policy spec")
}

fn cfg(secs: u64) -> SimConfig {
    SimConfig {
        cpus: 2,
        duration: Duration::from_secs(secs),
        ctx_switch: Duration::ZERO,
        sample_every: Duration::from_millis(20),
        track_gms: false,
        seed: 1,
        lean: false,
    }
}

fn example1_scenario(secs: u64) -> Scenario {
    // Example 1: w=1 and w=10 threads run from t=0 on two CPUs with
    // 1 ms quanta; a third w=1 thread arrives at t = secs/3.
    Scenario::new("example1", cfg(secs))
        .task(TaskSpec::new("T1", 1, BehaviorSpec::Inf))
        .task(TaskSpec::new("T2", 10, BehaviorSpec::Inf))
        .task(
            TaskSpec::new("T3", 1, BehaviorSpec::Inf).arrive_at(Time::from_millis(secs * 1000 / 3)),
        )
}

#[test]
fn example1_sfq_starves_the_light_thread() {
    let rep = Experiment::new(example1_scenario(3))
        .run(spec("sfq:quantum=1ms"))
        .unwrap()
        .sim_report()
        .clone();
    let t1 = rep.task("T1").unwrap();
    let gap = starvation(t1.series.points());
    // T1 must starve for a long stretch after T3 arrives at t=1s:
    // S1 = 1000 tag units vs S3 = 100, caught up at 1 tag/ms ⇒ ~0.9 s.
    assert!(gap > 0.5, "starvation gap only {gap:.2}s");
    // And T2+T3 ran continuously during it: service ratio shows skew.
    let t2 = rep.task("T2").unwrap().service.as_secs_f64();
    let t1s = t1.service.as_secs_f64();
    assert!(t2 / t1s > 1.5, "no skew: T2={t2:.2} T1={t1s:.2}");
}

#[test]
fn example1_fixed_by_readjustment_and_by_sfs() {
    let exp = Experiment::new(example1_scenario(3));
    let cmp = exp
        .compare(&[spec("sfq:quantum=1ms,readjust"), spec("sfs:quantum=1ms")])
        .unwrap();
    for run in &cmp.runs {
        let name = run.sched_name.clone();
        let rep = run.sim_report();
        let t1 = rep.task("T1").unwrap();
        let gap = starvation(t1.series.points());
        assert!(gap < 0.15, "{name}: T1 starved for {gap:.2}s");
        // Steady state after T3 arrives: phi = 1:2:1, so T1 and T3 get
        // one half CPU each and T2 a full one.
        let mid0 = 1.2;
        let mid1 = 2.8;
        let g = |n: &str| {
            let t = rep.task(n).unwrap();
            t.series.at(mid1) - t.series.at(mid0)
        };
        let (g1, g2, g3) = (g("T1"), g("T2"), g("T3"));
        assert!((g2 / g1 - 2.0).abs() < 0.25, "{name}: T2/T1 = {}", g2 / g1);
        assert!((g3 / g1 - 1.0).abs() < 0.2, "{name}: T3/T1 = {}", g3 / g1);
    }
}

/// Example 2, scaled 100× down so a steady state is reachable inside
/// the run (the paper's 10,000-thread version needs ~2000 s of virtual
/// time before every weight-1 thread has run once): a heavy w=100
/// thread, 100 w=1 threads, and w=10 short jobs (50 ms each, 5 quanta)
/// arriving back to back. All weights are feasible throughout.
fn example2_scenario() -> Scenario {
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_secs(30),
        ctx_switch: Duration::ZERO,
        sample_every: Duration::from_millis(100),
        track_gms: false,
        seed: 2,
        lean: false,
    };
    Scenario::new("example2", cfg)
        .task(TaskSpec::new("heavy", 100, BehaviorSpec::Inf))
        .task(TaskSpec::new("light", 1, BehaviorSpec::Inf).replicated(100))
        .stream(
            StreamSpec::new("short", 10, BehaviorSpec::Finite(Duration::from_millis(50)))
                .until(Time::from_secs(30)),
        )
}

/// Steady-state (10 s..30 s) CPU shares of the heavy thread and the
/// short-job stream, in CPUs.
fn example2_shares(rep: &SimReport) -> (f64, f64) {
    let gain = |t: &sfs::sim::TaskReport| t.series.at(30.0) - t.series.at(10.0);
    let heavy = gain(rep.task("heavy").unwrap()) / 20.0;
    let shorts: f64 = rep
        .tasks
        .iter()
        .filter(|t| t.name.starts_with("short#"))
        .map(gain)
        .sum::<f64>()
        / 20.0;
    (heavy, shorts)
}

#[test]
fn example2_sfs_keeps_the_stream_near_its_entitlement() {
    let rep = example2_scenario().run(spec("sfs:quantum=10ms").build(2));
    let (heavy, shorts) = example2_shares(&rep);
    // Entitlements of 2 CPUs: heavy 200/210 ≈ 0.95 CPU; stream
    // 20/210 ≈ 0.10 CPU (plus one-quantum-per-job arrival subsidy).
    assert!(heavy > 0.75, "heavy thread got {heavy:.2} CPUs under SFS");
    assert!(shorts < 0.4, "short stream took {shorts:.2} CPUs under SFS");
}

#[test]
fn example2_sfq_lets_the_stream_monopolize() {
    let rep = example2_scenario().run(spec("sfq:quantum=10ms,readjust").build(2));
    let (_heavy, sfq_shorts) = example2_shares(&rep);
    // SFQ (even with readjustment): each fresh job holds the minimum
    // start tag and spurts through its whole 5-quantum life — the
    // stream extracts ~5× its 0.10-CPU entitlement.
    assert!(
        sfq_shorts > 0.35,
        "expected SFQ to over-serve the stream, got {sfq_shorts:.2} CPUs"
    );
    // ... and markedly more than SFS grants it on the same workload.
    let sfs_rep = example2_scenario().run(spec("sfs:quantum=10ms").build(2));
    let (_, sfs_shorts) = example2_shares(&sfs_rep);
    assert!(
        sfq_shorts > 1.5 * sfs_shorts,
        "no separation: SFQ {sfq_shorts:.2} vs SFS {sfs_shorts:.2}"
    );
}
