//! Differential and property tests for hierarchical (tenant-group)
//! SFS — the §2-level guarantees the `sfs:groups(...)` policy makes:
//!
//! * **Flattening.** A two-level tree whose groups hold equal-weight
//!   members and carry the sum of their members' weights as the group
//!   share is service-equivalent to flat SFS over the flattened
//!   weights (the capacity-aware §2.1 readjustment exists precisely to
//!   make this hold when a group can occupy several CPUs).
//! * **Isolation.** A tenant that inflates its internal weights gains
//!   nothing: shares between tenants are fixed by group shares alone.
//! * **Grammar.** The nested `groups(...)` clause (with shares,
//!   sub-options and `shards=N`) round-trips through `Display∘parse`.
//! * **Conservation.** Group bookkeeping (share totals, capacities,
//!   held φ_g) survives arbitrary churn, checked by the scheduler's
//!   own invariant auditor after every event.

use proptest::prelude::*;
use sfs::prelude::*;

/// Builds the paired policies of the flattening property: a
/// hierarchical spec with one group per entry (share = members ×
/// weight) and the flat SFS it must be equivalent to.
fn paired_policies(groups: &[(usize, u64)]) -> (PolicySpec, PolicySpec) {
    let q = Duration::from_millis(5);
    let hier = PolicySpec::sfs_over(groups.iter().enumerate().map(|(j, &(n, w))| {
        GroupSpec::new(&format!("g{j}"), PolicySpec::sfs().with_quantum(q)).with_share(n as u64 * w)
    }));
    (hier, PolicySpec::sfs().with_quantum(q))
}

fn tenant_scenario(groups: &[(usize, u64)], cpus: u32) -> Scenario {
    let cfg = SimConfig {
        cpus,
        duration: Duration::from_secs(4),
        sample_every: Duration::from_secs(1),
        ..SimConfig::default()
    };
    let mut scenario = Scenario::new("flatten", cfg);
    for (j, &(n, w)) in groups.iter().enumerate() {
        scenario = scenario.tenant(
            &format!("g{j}"),
            [TaskSpec::new(&format!("t{j}"), w, BehaviorSpec::Inf).replicated(n)],
        );
    }
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Equal intra-group weights, group share = Σ member weights ⇒
    /// every task's share matches its share under flat SFS on the
    /// flattened weights, within scheduling-quantum noise.
    #[test]
    fn hierarchy_with_summed_shares_flattens_to_global_sfs(
        groups in proptest::collection::vec((1usize..4, 1u64..5), 2..5),
        cpus in 2u32..4,
    ) {
        let (hier, flat) = paired_policies(&groups);
        let exp = Experiment::new(tenant_scenario(&groups, cpus));
        let hier_rep = exp.run(&hier).expect("hier run");
        let flat_rep = exp.run(&flat).expect("flat run");
        let (hs, fs) = (hier_rep.shares(), flat_rep.shares());
        for ((h, f), t) in hs.iter().zip(&fs).zip(&hier_rep.tasks) {
            prop_assert!(
                (h - f).abs() < 0.05,
                "{}: hier share {h:.4} vs flat {f:.4} (groups {groups:?}, {cpus} cpus)",
                t.name
            );
        }
    }
}

/// A tenant that floods the machine with weight-inflated tasks must
/// not push another tenant below its group entitlement — while under
/// flat SFS the same flood starves the victim. This is the paper's
/// isolation argument lifted to tenant granularity.
#[test]
fn weight_inflating_tenant_cannot_starve_its_neighbours() {
    let q = Duration::from_millis(5);
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_secs(4),
        sample_every: Duration::from_secs(1),
        ..SimConfig::default()
    };
    let scenario = Scenario::new("isolation", cfg)
        .tenant(
            "victim",
            [TaskSpec::new("v", 1, BehaviorSpec::Inf).replicated(2)],
        )
        .tenant(
            "rogue",
            [TaskSpec::new("r", 100, BehaviorSpec::Inf).replicated(8)],
        );
    let exp = Experiment::new(scenario);

    let hier = PolicySpec::sfs_over([
        GroupSpec::new("victim", PolicySpec::sfs().with_quantum(q)),
        GroupSpec::new("rogue", PolicySpec::sfs().with_quantum(q)),
    ]);
    let rep = exp.run(&hier).unwrap();
    let shares = rep.tenant_shares();
    // Equal group shares: the victim tenant keeps half the machine no
    // matter what weights the rogue claims internally.
    assert!(
        (shares[0].1 - 0.5).abs() < 0.03,
        "victim share {:.4} under hier",
        shares[0].1
    );

    // Flat SFS baseline: the same flood takes nearly everything.
    let flat_rep = exp.run(PolicySpec::sfs().with_quantum(q)).unwrap();
    let victim_flat: f64 = flat_rep
        .shares()
        .iter()
        .zip(&flat_rep.tasks)
        .filter(|(_, t)| t.name.starts_with('v'))
        .map(|(s, _)| s)
        .sum();
    assert!(
        victim_flat < 0.1,
        "flat SFS should let the flood win ({victim_flat:.4})"
    );
}

/// Random hierarchical specs — groups with shares, sub-policy options
/// and optional sharding — must round-trip `Display ∘ parse` exactly.
fn build_hier_spec(entries: &[(usize, u64, u64, u64)], shards: Option<u32>) -> PolicySpec {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let groups = entries
        .iter()
        .enumerate()
        .map(|(j, &(kind, share, q_us, knob))| {
            let sub = match kind % 4 {
                0 => {
                    let mut p = PolicySpec::sfs().with_quantum(Duration::from_micros(1 + q_us));
                    if knob % 2 == 1 {
                        p = p.with_heuristic(1 + (knob as usize % 50));
                    }
                    p
                }
                1 => {
                    let mut p = PolicySpec::sfq();
                    if knob % 2 == 1 {
                        p = p.with_readjustment();
                    }
                    p
                }
                2 => PolicySpec::time_sharing().with_ticks(1 + (knob as i64 % 20)),
                _ => PolicySpec::round_robin(),
            };
            GroupSpec::new(NAMES[j], sub).with_share(1 + share % 9)
        });
    let spec = PolicySpec::sfs_over(groups);
    match shards {
        Some(n) => spec.with_shards(n),
        None => spec,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn nested_grammar_round_trips(
        entries in proptest::collection::vec(
            (0usize..4, 0u64..16, 0u64..5_000_000, 0u64..100),
            1..5,
        ),
        shards in 0u32..5,
    ) {
        // 0 and 1 mean "unsharded": exercise both plain and sharded forms.
        let spec = build_hier_spec(&entries, (shards >= 2).then_some(shards));
        let s = spec.to_string();
        let reparsed: PolicySpec = s.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, spec, "string form: {}", s);
    }
}

/// One random scheduler operation against a hierarchical scheduler
/// whose members are spread across three tenants.
#[derive(Debug, Clone)]
enum Op {
    Spawn(u64, usize),
    KillReady(usize),
    BlockRunning(usize),
    WakeOne(usize),
    RunQuanta(u8),
    Reweigh(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((1u64..50), (0usize..3)).prop_map(|(w, g)| Op::Spawn(w, g)),
        (0usize..64).prop_map(Op::KillReady),
        (0usize..64).prop_map(Op::BlockRunning),
        (0usize..64).prop_map(Op::WakeOne),
        (1u8..6).prop_map(Op::RunQuanta),
        ((0usize..64), (1u64..50)).prop_map(|(i, w)| Op::Reweigh(i, w)),
    ]
}

/// Drives the hierarchical scheduler through random tenant-tagged
/// churn on a lockstep 2-CPU machine. `check_invariants` after every
/// event re-derives the group share total and the capacity-aware
/// readjustment from scratch and compares them to the held values, so
/// this is the conservation property of group weights under
/// kill/arrival churn.
fn hier_churn(ops: &[Op]) {
    let spec = PolicySpec::sfs_over([
        GroupSpec::new("a", PolicySpec::sfs()).with_share(3),
        GroupSpec::new("b", PolicySpec::sfq()).with_share(2),
        GroupSpec::new("c", PolicySpec::sfs().with_heuristic(4)),
    ]);
    let mut sched = spec.build(2);
    let tenants: Vec<TenantId> = ["a", "b", "c"]
        .iter()
        .map(|g| sched.bind_tenant(g).expect("group binds"))
        .collect();
    let quantum = Duration::from_millis(1);
    let mut now = Time::ZERO;
    let mut next_id = 0u64;
    let mut ready: Vec<TaskId> = Vec::new();
    let mut blocked: Vec<TaskId> = Vec::new();
    let mut running: Vec<Option<TaskId>> = vec![None; 2];

    let fill = |sched: &mut Box<dyn Scheduler>,
                running: &mut Vec<Option<TaskId>>,
                ready: &mut Vec<TaskId>,
                now: Time| {
        for (c, slot) in running.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(id) = sched.pick_next(CpuId(c as u32), now) {
                    assert!(ready.contains(&id), "picked non-ready task {id}");
                    ready.retain(|&r| r != id);
                    *slot = Some(id);
                }
            }
        }
    };

    for op in ops {
        match op {
            Op::Spawn(w, g) => {
                next_id += 1;
                let id = TaskId(next_id);
                sched.attach_tenant(id, weight(*w), Some(tenants[*g]), now);
                assert_eq!(sched.tenant_of(id), Some(tenants[*g]));
                ready.push(id);
            }
            Op::KillReady(i) => {
                if !ready.is_empty() {
                    let id = ready.remove(i % ready.len());
                    sched.detach(id, now);
                }
            }
            Op::BlockRunning(i) => {
                let occupied: Vec<usize> = (0..2).filter(|&c| running[c].is_some()).collect();
                if !occupied.is_empty() {
                    let c = occupied[i % occupied.len()];
                    let id = running[c].take().unwrap();
                    sched.put_prev(id, quantum / 2, SwitchReason::Blocked, now);
                    blocked.push(id);
                }
            }
            Op::WakeOne(i) => {
                if !blocked.is_empty() {
                    let id = blocked.remove(i % blocked.len());
                    sched.wake(id, now);
                    ready.push(id);
                }
            }
            Op::RunQuanta(n) => {
                for _ in 0..*n {
                    fill(&mut sched, &mut running, &mut ready, now);
                    now += quantum;
                    for slot in &mut running {
                        if let Some(id) = slot.take() {
                            sched.put_prev(id, quantum, SwitchReason::Preempted, now);
                            ready.push(id);
                        }
                    }
                }
            }
            Op::Reweigh(i, w) => {
                if !ready.is_empty() {
                    let id = ready[i % ready.len()];
                    sched.set_weight(id, weight(*w), now);
                }
            }
        }
        assert_eq!(
            sched.nr_tasks(),
            ready.len() + blocked.len() + running.iter().flatten().count(),
            "task count mismatch after {op:?}"
        );
        sched.check_invariants();
        fill(&mut sched, &mut running, &mut ready, now);
        if !ready.is_empty() {
            assert!(
                running.iter().all(Option::is_some),
                "idle CPU with ready tasks after {op:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn group_shares_conserve_under_churn(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        hier_churn(&ops);
    }
}
