//! Differential test for the indexed run-queue rewrite.
//!
//! The arena-backed skip list replaced the §3.1 sorted-scan linked
//! list under every tag-ordered run queue (SFQ start tags, WFQ finish
//! tags, stride passes, BVT effective virtual times) and is a pure
//! data-structure change: the *sequence* a queue presents must be
//! identical, including the FIFO order of equal keys that the §2.3
//! "ties are broken arbitrarily" licence pins down deterministically.
//!
//! The reference model is the semantics the old list implemented by
//! construction: a plain `Vec` kept sorted by linear scan, inserting
//! every new or re-keyed entry *after* all entries with an equal key.
//! Random churn (inserts, removals, key updates — with heavy key
//! duplication so tie runs are long) must keep the skip list and the
//! scan-sorted vector identical entry for entry, forwards and
//! backwards, in both sort orders.

use proptest::prelude::*;
use sfs_core::fixed::Fixed;
use sfs_core::queues::{IndexedList, NodeRef, Order};
use sfs_core::task::TaskId;

/// The naive reference: a scan-sorted vector with FIFO tie order.
struct RefList {
    order: Order,
    entries: Vec<(Fixed, TaskId)>,
}

impl RefList {
    fn new(order: Order) -> RefList {
        RefList {
            order,
            entries: Vec::new(),
        }
    }

    fn before(&self, a: Fixed, b: Fixed) -> bool {
        match self.order {
            Order::Ascending => a < b,
            Order::Descending => a > b,
        }
    }

    /// Inserts after all entries sorting at-or-before `key` — the FIFO
    /// tie rule of the original sorted scan.
    fn insert(&mut self, key: Fixed, id: TaskId) {
        let at = self
            .entries
            .iter()
            .position(|&(k, _)| self.before(key, k))
            .unwrap_or(self.entries.len());
        self.entries.insert(at, (key, id));
    }

    fn remove(&mut self, id: TaskId) {
        let at = self
            .entries
            .iter()
            .position(|&(_, e)| e == id)
            .expect("reference lost an id");
        self.entries.remove(at);
    }

    fn update_key(&mut self, id: TaskId, key: Fixed) {
        self.remove(id);
        self.insert(key, id);
    }
}

/// One random queue operation. Keys are drawn from a tiny range so
/// duplicate-key tie runs dominate.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Remove(usize),
    UpdateKey(usize, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-8i64..8).prop_map(Op::Insert),
        (-8i64..8).prop_map(Op::Insert),
        (0usize..64).prop_map(Op::Remove),
        ((0usize..64), (-8i64..8)).prop_map(|(i, k)| Op::UpdateKey(i, k)),
        ((0usize..64), (-8i64..8)).prop_map(|(i, k)| Op::UpdateKey(i, k)),
    ]
}

fn lockstep(order: Order, ops: &[Op]) {
    let mut list = IndexedList::new(order);
    let mut model = RefList::new(order);
    let mut live: Vec<(TaskId, NodeRef)> = Vec::new();
    let mut next_id = 0u64;

    for op in ops {
        match *op {
            Op::Insert(k) => {
                next_id += 1;
                let id = TaskId(next_id);
                let key = Fixed::from_int(k);
                let node = list.insert(key, id);
                model.insert(key, id);
                live.push((id, node));
            }
            Op::Remove(i) => {
                if !live.is_empty() {
                    let (id, node) = live.remove(i % live.len());
                    list.remove(node);
                    model.remove(id);
                }
            }
            Op::UpdateKey(i, k) => {
                if !live.is_empty() {
                    let (id, node) = live[i % live.len()];
                    let key = Fixed::from_int(k);
                    list.update_key(node, key);
                    model.update_key(id, key);
                }
            }
        }
        list.check_invariants();

        // Entry-for-entry equality, including FIFO tie order.
        let got: Vec<(Fixed, TaskId)> = list.iter().collect();
        assert_eq!(got, model.entries, "forward order diverged");
        let mut rev: Vec<(Fixed, TaskId)> = list.iter_rev().collect();
        rev.reverse();
        assert_eq!(rev, model.entries, "reverse order diverged");
        assert_eq!(list.len(), model.entries.len());
        assert_eq!(list.head(), model.entries.first().copied());
        assert_eq!(list.tail(), model.entries.last().copied());
    }
}

proptest! {
    /// Ascending order (the start-tag / finish-tag / pass / EVT queues).
    #[test]
    fn indexed_list_matches_scan_sorted_vec_ascending(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        lockstep(Order::Ascending, &ops);
    }

    /// Descending order (the historical weight-queue direction).
    #[test]
    fn indexed_list_matches_scan_sorted_vec_descending(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        lockstep(Order::Descending, &ops);
    }
}

/// A deterministic soak heavy on tie churn: every key is one of three
/// values, so nearly all inserts and updates land inside a tie run.
#[test]
fn indexed_list_matches_reference_under_tie_soak() {
    let mut ops = Vec::new();
    for i in 0..120u64 {
        ops.push(Op::Insert((i % 3) as i64));
    }
    for round in 0..600u64 {
        match round % 5 {
            0 => ops.push(Op::Insert((round % 3) as i64)),
            1 => ops.push(Op::Remove(round as usize)),
            _ => ops.push(Op::UpdateKey(round as usize, ((round / 5) % 3) as i64)),
        }
    }
    lockstep(Order::Ascending, &ops);
    lockstep(Order::Descending, &ops);
}
