//! Trace subsystem integration: the shared context-switch definition,
//! Perfetto export from both substrates, and deterministic
//! capture→replay.

use sfs::experiment::{Capture, Experiment, RtSubstrate};
use sfs::prelude::*;
use sfs::trace::{perfetto, CounterTrack, TraceEvent};

/// A 1-CPU scenario where exactly one task ever runs: under the shared
/// definition (a dispatch granting the CPU to a different task than it
/// last ran; idle gaps do not reset the memory), it must cost exactly
/// one context switch — the initial idle→task grant — no matter how
/// often it blocks, wakes, or is re-granted.
fn lone_interact() -> Scenario {
    let cfg = SimConfig {
        cpus: 1,
        duration: Duration::from_millis(300),
        ..SimConfig::default()
    };
    Scenario::new("lone-interact", cfg).task(TaskSpec::new(
        "only",
        1,
        BehaviorSpec::Interact {
            think: Duration::from_millis(20),
            burst: Duration::from_millis(5),
        },
    ))
}

#[test]
fn both_substrates_share_the_ctx_switch_definition() {
    let policy = "sfs:quantum=10ms";
    let sim = Experiment::new(lone_interact()).run(policy).unwrap();
    assert_eq!(
        sim.ctx_switches, 1,
        "sim: a lone task is exactly one switch (idle→task)"
    );
    let rt = Experiment::on(lone_interact(), RtSubstrate::default())
        .run(policy)
        .unwrap();
    assert_eq!(
        rt.ctx_switches, 1,
        "rt: re-grants of the same task after blocks/expiries are not switches"
    );
}

/// Three non-overlapping finite tasks on one CPU: each finishes its
/// whole demand before the next arrives, so the context-switch
/// sequence is the same on wall-clock threads as in virtual time.
fn sequential_scenario() -> Scenario {
    let cfg = SimConfig {
        cpus: 1,
        duration: Duration::from_millis(300),
        ..SimConfig::default()
    };
    Scenario::new("sequential", cfg)
        .task(TaskSpec::new(
            "alpha",
            1,
            BehaviorSpec::Finite(Duration::from_millis(30)),
        ))
        .task(
            TaskSpec::new("beta", 2, BehaviorSpec::Finite(Duration::from_millis(30)))
                .arrive_at(Time::from_millis(100)),
        )
        .task(
            TaskSpec::new("gamma", 1, BehaviorSpec::Finite(Duration::from_millis(30)))
                .arrive_at(Time::from_millis(200)),
        )
}

#[test]
fn rt_capture_replays_identically_on_the_simulator() {
    let exp = Experiment::on(sequential_scenario(), RtSubstrate::default());
    let (report, capture) = exp.capture("sfs:quantum=5ms").unwrap();
    assert_eq!(report.substrate, "rt");
    assert_eq!(capture.trace.meta.substrate, "rt");

    // The capture survives its serialized form.
    let path = std::env::temp_dir().join("sfs-capture-replay-test.json");
    capture.save(&path).unwrap();
    let loaded = Capture::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded.scenario, capture.scenario);
    assert_eq!(
        loaded.trace.ctx_switch_sequence(),
        capture.trace.ctx_switch_sequence()
    );

    // Replay re-drives the simulator from the capture: the identical
    // context-switch sequence — task, cpu, timestamp order — must come
    // back.
    let replay = Experiment::replay(&loaded).unwrap();
    assert_eq!(replay.report.substrate, "sim");
    assert_eq!(
        replay.captured,
        vec![
            (0, "alpha".to_string()),
            (0, "beta".to_string()),
            (0, "gamma".to_string()),
        ],
        "rt run must switch exactly at the three arrivals"
    );
    assert!(
        replay.sequences_match(),
        "replay diverged at index {:?}: captured {:?} vs replayed {:?}",
        replay.first_divergence(),
        replay.captured,
        replay.replayed,
    );
}

/// The rt timer thread samples per-task scheduling state through the
/// live scheduler: the worst charged surplus and the smallest adjusted
/// weight among running tasks, on the same counter tracks the simulator
/// uses — so both substrates' traces answer "how unfair did it get"
/// directly in the Perfetto UI.
#[test]
fn rt_timer_samples_running_surplus_and_phi() {
    let exp = Experiment::on(sequential_scenario(), RtSubstrate::default());
    let (_, capture) = exp.capture("sfs:quantum=5ms").unwrap();
    let has = |want: CounterTrack| {
        capture
            .trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Counter { track, .. } if *track == want))
    };
    assert!(
        has(CounterTrack::MaxRunSurplus),
        "no surplus samples from the timer thread"
    );
    assert!(
        has(CounterTrack::MinRunPhi),
        "no adjusted-weight samples from the timer thread"
    );
}

#[test]
fn both_substrates_export_valid_perfetto_traces() {
    let dir = std::env::temp_dir();
    let sim_path = dir.join("sfs-trace-test-sim.perfetto-trace");
    let rt_path = dir.join("sfs-trace-test-rt.perfetto-trace");

    let sim = Experiment::new(sequential_scenario())
        .run_with_trace("sfs:quantum=5ms", &sim_path)
        .unwrap();
    assert_eq!(sim.trace_path.as_deref(), Some(sim_path.as_path()));
    let bytes = std::fs::read(&sim_path).unwrap();
    let _ = std::fs::remove_file(&sim_path);
    let stats = perfetto::validate_encoded(&bytes).unwrap();
    assert!(stats.track_events > 0, "{stats:?}");
    assert!(stats.counter_samples > 0, "{stats:?}");

    let rt = Experiment::on(sequential_scenario(), RtSubstrate::default())
        .run_with_trace("sfs:quantum=5ms", &rt_path)
        .unwrap();
    assert_eq!(rt.trace_path.as_deref(), Some(rt_path.as_path()));
    let bytes = std::fs::read(&rt_path).unwrap();
    let _ = std::fs::remove_file(&rt_path);
    let stats = perfetto::validate_encoded(&bytes).unwrap();
    assert!(stats.track_events > 0, "{stats:?}");
    assert!(stats.counter_samples > 0, "{stats:?}");
}
