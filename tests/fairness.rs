//! Cross-crate fairness properties: SFS allocations vs the GMS fluid
//! ideal across machine sizes, weight patterns, and workload mixes.

use sfs::metrics::fairness::{ideal_shares, jain_index, proportional_error};
use sfs::prelude::*;

fn sfs(cpus: u32, quantum_ms: u64) -> Box<dyn Scheduler> {
    PolicySpec::sfs()
        .with_quantum(Duration::from_millis(quantum_ms))
        .build(cpus)
}

fn run_cpu_bound(cpus: u32, weights: &[u64], secs: u64) -> SimReport {
    let cfg = SimConfig {
        cpus,
        duration: Duration::from_secs(secs),
        ctx_switch: Duration::from_micros(5),
        sample_every: Duration::from_millis(500),
        track_gms: true,
        seed: 3,
        lean: false,
    };
    let mut s = Scenario::new("fairness", cfg);
    for (i, &w) in weights.iter().enumerate() {
        s = s.task(TaskSpec::new(&format!("t{i}"), w, BehaviorSpec::Inf));
    }
    s.run(sfs(cpus, 10))
}

#[test]
fn proportional_error_small_across_machines() {
    for (cpus, weights) in [
        (1u32, vec![1u64, 2, 3]),
        (2, vec![1, 1, 2, 4]),
        (4, vec![1, 2, 3, 4, 5, 6, 7, 8]),
        (8, vec![5, 5, 4, 4, 3, 3, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1]),
    ] {
        let rep = run_cpu_bound(cpus, &weights, 10);
        let services: Vec<f64> = rep.tasks.iter().map(|t| t.service.as_secs_f64()).collect();
        let wf: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
        let err = proportional_error(&services, &wf, cpus);
        assert!(
            err < 0.02,
            "{cpus} cpus, weights {weights:?}: share error {err:.4}"
        );
    }
}

#[test]
fn infeasible_weights_saturate_at_one_cpu() {
    // One monster weight on a 4-CPU box: it must get exactly one CPU,
    // the rest split proportionally.
    let rep = run_cpu_bound(4, &[1_000_000, 3, 2, 1, 1, 1], 10);
    let monster = rep.tasks[0].service.as_secs_f64();
    assert!(
        (monster / 10.0 - 1.0).abs() < 0.02,
        "monster got {:.3} CPUs",
        monster / 10.0
    );
    // The cascade clamps w=3 too (3/8 of 3 CPUs would exceed one CPU):
    // φ = [2.5, 2.5, 2, 1, 1, 1], so the rest get 1, 0.8, 0.4, 0.4, 0.4
    // CPUs respectively.
    let rest: Vec<f64> = rep.tasks[1..]
        .iter()
        .map(|t| t.service.as_secs_f64())
        .collect();
    let total: f64 = rest.iter().sum();
    assert!((total / 10.0 - 3.0).abs() < 0.02);
    assert!((rest[0] / 10.0 - 1.0).abs() < 0.03, "{rest:?}");
    assert!((rest[1] / rest[4] - 2.0).abs() < 0.2, "{rest:?}");
    assert!((rest[0] / rest[4] - 2.5).abs() < 0.2, "{rest:?}");
}

#[test]
fn gms_error_bounded_by_a_few_quanta() {
    let rep = run_cpu_bound(2, &[4, 2, 1, 1], 20);
    for t in &rep.tasks {
        let err = t.gms_error.expect("gms tracking was on");
        assert!(
            err < Duration::from_millis(60),
            "{}: deviation from fluid GMS {err}",
            t.name
        );
    }
}

#[test]
fn jain_index_near_one_for_equal_weights() {
    let rep = run_cpu_bound(2, &[1; 16], 10);
    let services: Vec<f64> = rep.tasks.iter().map(|t| t.service.as_secs_f64()).collect();
    let j = jain_index(&services);
    assert!(j > 0.999, "Jain index {j}");
}

#[test]
fn work_conservation_under_blocking_mix() {
    // Compute + I/O mix with enough runnable tasks to keep both CPUs
    // busy: total service must be ≈ 2 CPUs × duration.
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_secs(10),
        ctx_switch: Duration::ZERO,
        sample_every: Duration::from_millis(500),
        track_gms: false,
        seed: 9,
        lean: false,
    };
    let rep = Scenario::new("mix", cfg)
        .task(TaskSpec::new("inf", 1, BehaviorSpec::Inf).replicated(3))
        .task(
            TaskSpec::new(
                "gcc",
                1,
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(40),
                    io: Duration::from_millis(2),
                },
            )
            .replicated(2),
        )
        .run(sfs(2, 20));
    let total = rep.total_service().as_secs_f64();
    assert!(total > 19.8, "machine idled: {total:.2}s of 20");
}

#[test]
fn weighted_interactive_tasks_receive_priority_service() {
    // Two identical interactive tasks, one with 4x the weight, plus CPU
    // hogs. The heavier one should see no worse response times.
    let cfg = SimConfig {
        cpus: 2,
        duration: Duration::from_secs(20),
        ctx_switch: Duration::from_micros(5),
        sample_every: Duration::from_millis(500),
        track_gms: false,
        seed: 17,
        lean: false,
    };
    let rep = Scenario::new("interactive-weights", cfg)
        .task(TaskSpec::new(
            "vip",
            4,
            BehaviorSpec::Interact {
                think: Duration::from_millis(50),
                burst: Duration::from_millis(4),
            },
        ))
        .task(TaskSpec::new(
            "std",
            1,
            BehaviorSpec::Interact {
                think: Duration::from_millis(50),
                burst: Duration::from_millis(4),
            },
        ))
        .task(TaskSpec::new("hog", 1, BehaviorSpec::Inf).replicated(4))
        .run(sfs(2, 20));
    let vip = rep.task("vip").unwrap().responses.as_ref().unwrap().mean();
    let std_ = rep.task("std").unwrap().responses.as_ref().unwrap().mean();
    assert!(vip <= std_ * 1.5 + 1.0, "vip {vip:.2}ms vs std {std_:.2}ms");
    assert!(vip < 40.0, "vip response degraded: {vip:.2}ms");
}

#[test]
fn ideal_shares_match_fluid_gms() {
    // The metrics-crate water-filling and the core fluid GMS must agree.
    let weights = [10u64, 4, 2, 1, 1];
    let mut fluid = sfs::core::gms::FluidGms::new(2);
    for (i, &w) in weights.iter().enumerate() {
        fluid.add(TaskId(i as u64), weight(w), true);
    }
    let wf: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
    let shares = ideal_shares(&wf, 2);
    for (i, s) in shares.iter().enumerate() {
        // ideal_shares is a fraction of total bandwidth (2 CPUs).
        let fluid_share = fluid.rate(TaskId(i as u64)) / 2.0;
        assert!(
            (s - fluid_share).abs() < 1e-9,
            "task {i}: water-filling {s} vs fluid {fluid_share}"
        );
    }
}

#[test]
fn sfs_reduces_to_sfq_under_churn_on_one_cpu() {
    // The uniprocessor degeneration property (§2.3) — SFS and SFQ make
    // identical decisions on one CPU — must survive dynamic events, not
    // just a static task set: arrivals, departures, blocking and
    // wakeups all hit the tag machinery differently. Later events use
    // larger ids, matching how ids are allocated in practice, so the
    // two schedulers' tie-breaks (SFS by id, SFQ by queue order) agree
    // when an arrival or wakeup lands exactly on the virtual time.
    let q = Duration::from_millis(1);
    let mut sfs = PolicySpec::sfs().with_quantum(q).build(1);
    let mut sfq = PolicySpec::sfq()
        .with_quantum(q)
        .with_readjustment()
        .build(1);
    let mut now = Time::ZERO;
    for (id, w) in [(1u64, 3u64), (2, 1), (3, 7), (4, 2)] {
        sfs.attach(TaskId(id), weight(w), now);
        sfq.attach(TaskId(id), weight(w), now);
    }
    let mut sleeper: Option<TaskId> = None;
    for step in 0u64..600 {
        // A deterministic event schedule exercising every transition.
        match step {
            100 => {
                sfs.attach(TaskId(5), weight(5), now);
                sfq.attach(TaskId(5), weight(5), now);
            }
            350 => {
                let id = sleeper.take().expect("someone blocked at step 200");
                sfs.wake(id, now);
                sfq.wake(id, now);
            }
            400 => {
                sfs.detach(TaskId(3), now);
                sfq.detach(TaskId(3), now);
            }
            450 => {
                sfs.set_weight(TaskId(2), weight(6), now);
                sfq.set_weight(TaskId(2), weight(6), now);
            }
            _ => {}
        }
        let a = sfs.pick_next(CpuId(0), now);
        let b = sfq.pick_next(CpuId(0), now);
        assert_eq!(a, b, "diverged at step {step}");
        let id = a.unwrap();
        now += q;
        // Whichever task runs at step 200 blocks there (until 350);
        // everyone else is preempted at each quantum boundary.
        let reason = if step == 200 {
            sleeper = Some(id);
            SwitchReason::Blocked
        } else {
            SwitchReason::Preempted
        };
        sfs.put_prev(id, q, reason, now);
        sfq.put_prev(id, q, reason, now);
    }
    assert!(sleeper.is_none(), "the blocked task was woken and ran");
}
