//! Properties of the `PolicySpec` registry that must hold for *every*
//! registered policy, present and future:
//!
//! * `parse ∘ to_string` is the identity on any constructible spec
//!   (randomised over kinds and options);
//! * the simulator never manufactures CPU time: total delivered service
//!   is bounded by `cpus × duration` under every policy on randomised
//!   scenarios, driven end to end through the registry and the
//!   `Experiment` front-end.

use proptest::prelude::*;
use sfs::core::policy::PolicyKind;
use sfs::prelude::*;

/// Builds a random-but-valid spec from raw fuzz inputs: a kind index
/// plus an option bitmask, applying only the options that exist for
/// the kind (mirroring the builder's own validity rules).
fn build_spec(kind_idx: usize, quantum_us: u64, knob: u64, bits: u64) -> PolicySpec {
    let kind = PolicyKind::ALL[kind_idx % PolicyKind::ALL.len()];
    let mut spec = PolicySpec::new(kind);
    let quantum = Duration::from_micros(quantum_us);
    match kind {
        PolicyKind::Sfs => {
            if bits & 1 != 0 {
                spec = spec.with_quantum(quantum);
            }
            if bits & 2 != 0 {
                spec = spec.with_heuristic(1 + (knob as usize % 100));
            }
            if bits & 4 != 0 {
                spec = spec.with_refresh_every(1 + knob % 1000);
            }
            if bits & 8 != 0 {
                spec = spec.with_affinity_margin(quantum * 2);
            }
            if bits & 16 != 0 {
                spec = spec.with_audit();
            }
        }
        PolicyKind::Sfq | PolicyKind::Stride | PolicyKind::Bvt | PolicyKind::Wfq => {
            if bits & 1 != 0 {
                spec = spec.with_quantum(quantum);
            }
            if bits & 2 != 0 {
                spec = spec.with_readjustment();
            }
        }
        PolicyKind::TimeSharing => {
            if bits & 1 != 0 {
                spec = spec.with_ticks(1 + (knob as i64 % 50));
            }
        }
        PolicyKind::RoundRobin => {
            if bits & 1 != 0 {
                spec = spec.with_quantum(quantum);
            }
        }
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn policy_spec_round_trips_for_every_kind(
        kind_idx in 0usize..7,
        quantum_us in 1u64..5_000_000,
        knob in 0u64..10_000,
        bits in 0u64..32,
    ) {
        let spec = build_spec(kind_idx, quantum_us, knob, bits);
        let s = spec.to_string();
        let reparsed: PolicySpec = s.parse().expect("canonical form must parse");
        prop_assert_eq!(reparsed, spec, "string form: {}", s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn no_policy_manufactures_cpu_time(
        weights in proptest::collection::vec((1u64..50, 0u8..2), 1..6),
        cpus in 1u32..4,
        stream_weight in 1u64..20,
    ) {
        let cfg = SimConfig {
            cpus,
            duration: Duration::from_secs(1),
            sample_every: Duration::from_millis(250),
            ..SimConfig::default()
        };
        let mut scenario = Scenario::new("conservation", cfg);
        for (i, &(w, kind)) in weights.iter().enumerate() {
            let behavior = if kind == 0 {
                BehaviorSpec::Inf
            } else {
                BehaviorSpec::Compile {
                    burst: Duration::from_millis(40),
                    io: Duration::from_millis(2),
                }
            };
            scenario = scenario.task(TaskSpec::new(&format!("t{i}"), w, behavior));
        }
        scenario = scenario.stream(
            StreamSpec::new(
                "jobs",
                stream_weight,
                BehaviorSpec::Finite(Duration::from_millis(30)),
            )
            .until(Time::from_secs(1)),
        );

        let budget = Duration::from_secs(1) * u64::from(cpus);
        let exp = Experiment::new(scenario);
        // Every policy in the registry, end to end through the one
        // front-end: a policy added to the registry automatically joins
        // this property.
        let cmp = exp.compare(PolicySpec::registered())
            .expect("well-formed scenario");
        for run in &cmp.runs {
            let total = run.total_service();
            prop_assert!(
                total <= budget,
                "{} delivered {total} > budget {budget} on {cpus} cpus",
                run.sched_name
            );
        }
    }
}
