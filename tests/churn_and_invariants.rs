//! Property-based stress tests: random workload churn must never break
//! scheduler invariants, starve runnable tasks, or diverge between
//! exact and heuristic SFS beyond tie-breaking noise.

use proptest::prelude::*;
use sfs::prelude::*;

/// One random scheduler operation.
#[derive(Debug, Clone)]
enum Op {
    Spawn(u64),
    KillReady(usize),
    BlockRunning(usize),
    WakeOne(usize),
    RunQuanta(u8),
    Reweigh(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..50).prop_map(Op::Spawn),
        (0usize..64).prop_map(Op::KillReady),
        (0usize..64).prop_map(Op::BlockRunning),
        (0usize..64).prop_map(Op::WakeOne),
        (1u8..6).prop_map(Op::RunQuanta),
        ((0usize..64), (1u64..50)).prop_map(|(i, w)| Op::Reweigh(i, w)),
    ]
}

/// Drives a scheduler through a random op sequence on a lockstep
/// 2-CPU machine, checking basic sanity at every step.
fn churn(mut sched: Box<dyn Scheduler>, ops: &[Op]) {
    let quantum = Duration::from_millis(1);
    let mut now = Time::ZERO;
    let mut next_id = 0u64;
    let mut ready: Vec<TaskId> = Vec::new(); // attached, not running, not blocked
    let mut blocked: Vec<TaskId> = Vec::new();
    let mut running: Vec<Option<TaskId>> = vec![None; 2];

    let fill = |sched: &mut Box<dyn Scheduler>,
                running: &mut Vec<Option<TaskId>>,
                ready: &mut Vec<TaskId>,
                now: Time| {
        for (c, slot) in running.iter_mut().enumerate() {
            if slot.is_none() {
                if let Some(id) = sched.pick_next(CpuId(c as u32), now) {
                    assert!(ready.contains(&id), "picked non-ready task {id}");
                    ready.retain(|&r| r != id);
                    *slot = Some(id);
                }
            }
        }
    };

    for op in ops {
        match op {
            Op::Spawn(w) => {
                next_id += 1;
                let id = TaskId(next_id);
                sched.attach(id, weight(*w), now);
                ready.push(id);
            }
            Op::KillReady(i) => {
                if !ready.is_empty() {
                    let id = ready.remove(i % ready.len());
                    sched.detach(id, now);
                }
            }
            Op::BlockRunning(i) => {
                let occupied: Vec<usize> = (0..2).filter(|&c| running[c].is_some()).collect();
                if !occupied.is_empty() {
                    let c = occupied[i % occupied.len()];
                    let id = running[c].take().unwrap();
                    sched.put_prev(id, quantum / 2, SwitchReason::Blocked, now);
                    blocked.push(id);
                }
            }
            Op::WakeOne(i) => {
                if !blocked.is_empty() {
                    let id = blocked.remove(i % blocked.len());
                    sched.wake(id, now);
                    ready.push(id);
                }
            }
            Op::RunQuanta(n) => {
                for _ in 0..*n {
                    fill(&mut sched, &mut running, &mut ready, now);
                    now += quantum;
                    for slot in &mut running {
                        if let Some(id) = slot.take() {
                            sched.put_prev(id, quantum, SwitchReason::Preempted, now);
                            ready.push(id);
                        }
                    }
                }
            }
            Op::Reweigh(i, w) => {
                if !ready.is_empty() {
                    let id = ready[i % ready.len()];
                    sched.set_weight(id, weight(*w), now);
                }
            }
        }
        // Sanity: counts line up.
        assert_eq!(
            sched.nr_tasks(),
            ready.len() + blocked.len() + running.iter().flatten().count(),
            "task count mismatch after {op:?}"
        );
        // Structural invariants (a no-op for policies without a checker).
        sched.check_invariants();
        // Work conservation: with ready tasks, pick_next must succeed.
        fill(&mut sched, &mut running, &mut ready, now);
        if !ready.is_empty() {
            assert!(
                running.iter().all(Option::is_some),
                "idle CPU with ready tasks after {op:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sfs_survives_churn(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        churn(PolicySpec::sfs().build(2), &ops);
    }

    #[test]
    fn sfs_heuristic_survives_churn(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        churn(PolicySpec::sfs().with_heuristic(8).build(2), &ops);
    }

    #[test]
    fn sfq_survives_churn(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        churn(PolicySpec::sfq().with_readjustment().build(2), &ops);
    }

    #[test]
    fn timeshare_survives_churn(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        churn(PolicySpec::time_sharing().build(2), &ops);
    }

    #[test]
    fn stride_survives_churn(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        churn(PolicySpec::stride().with_readjustment().build(2), &ops);
    }

    #[test]
    fn every_registered_policy_survives_churn(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        // The registry makes "all policies" a closed, testable set: any
        // policy added to PolicySpec automatically joins this property.
        for spec in PolicySpec::registered() {
            churn(spec.build(2), &ops);
        }
    }
}

#[test]
fn deterministic_across_runs() {
    // The same scenario must produce bit-identical reports.
    let build = || {
        let cfg = SimConfig {
            cpus: 2,
            duration: Duration::from_secs(3),
            ctx_switch: Duration::from_micros(5),
            sample_every: Duration::from_millis(100),
            track_gms: false,
            seed: 99,
            lean: false,
        };
        Scenario::new("det", cfg)
            .task(TaskSpec::new("a", 3, BehaviorSpec::Inf))
            .task(TaskSpec::new(
                "b",
                1,
                BehaviorSpec::Interact {
                    think: Duration::from_millis(20),
                    burst: Duration::from_millis(2),
                },
            ))
            .task(
                TaskSpec::new(
                    "c",
                    2,
                    BehaviorSpec::Compile {
                        burst: Duration::from_millis(30),
                        io: Duration::from_millis(1),
                    },
                )
                .replicated(3),
            )
            .run(PolicySpec::sfs().build(2))
    };
    let (r1, r2) = (build(), build());
    for (a, b) in r1.tasks.iter().zip(r2.tasks.iter()) {
        assert_eq!(a.service, b.service, "{}", a.name);
        assert_eq!(a.completions, b.completions, "{}", a.name);
        assert_eq!(a.series.points(), b.series.points(), "{}", a.name);
    }
    assert_eq!(r1.ctx_switches, r2.ctx_switches);
}

/// Renormalization (§3.2 wrap-around handling) shifts *every* tag —
/// including those of blocked tasks — down by the minimum start tag.
/// Wake flooring `S_i = max(F_i, v)` (§2.3) must keep holding when a
/// task blocks on one side of a renormalization boundary and wakes on
/// the other: both its stored finish tag and the virtual time were
/// shifted by the same delta, so the comparison is preserved.
fn renorm_wake_flooring(weights: &[u64], rounds: &[(u8, u8)]) {
    // ~5 ms of virtual time: even the smallest generated run (≥500
    // quanta of 1 ms across a total weight ≤40, so v ≥ 1.25e7) crosses
    // the boundary, and most runs cross it many times.
    let cfg = SfsConfig {
        quantum: Duration::from_millis(1),
        renorm_threshold: Fixed::from_int(5_000_000),
        ..SfsConfig::default()
    };
    let mut sched = Sfs::with_config(1, cfg);
    let quantum = Duration::from_millis(1);
    let mut now = Time::ZERO;
    let mut blocked: Vec<TaskId> = Vec::new();
    for (i, w) in weights.iter().enumerate() {
        sched.attach(TaskId(i as u64), weight(*w), now);
    }
    let mut on_cpu: Option<TaskId> = None;
    for &(quanta, action) in rounds {
        for _ in 0..u64::from(quanta) * 25 {
            if on_cpu.is_none() {
                on_cpu = sched.pick_next(CpuId(0), now);
            }
            let Some(id) = on_cpu.take() else { break };
            now += quantum;
            sched.put_prev(id, quantum, SwitchReason::Preempted, now);
        }
        if action % 2 == 0 {
            // Block whatever runs next (only a running task can block).
            if on_cpu.is_none() {
                on_cpu = sched.pick_next(CpuId(0), now);
            }
            if let Some(id) = on_cpu.take() {
                if sched.nr_runnable() > 1 {
                    now += quantum / 2;
                    sched.put_prev(id, quantum / 2, SwitchReason::Blocked, now);
                    blocked.push(id);
                } else {
                    now += quantum;
                    sched.put_prev(id, quantum, SwitchReason::Preempted, now);
                }
            }
        } else if !blocked.is_empty() {
            let id = blocked.remove(usize::from(action) % blocked.len());
            // The §2.3 wake floor, asserted against the *pre-wake*
            // finish tag and virtual time (both post-shift if any
            // renormalization fired while the task slept).
            let f_pre = sched.tags_of(id).unwrap().finish_tag;
            let v_pre = sched.virtual_time().unwrap();
            sched.wake(id, now);
            let tags = sched.tags_of(id).unwrap();
            assert_eq!(
                tags.start_tag,
                f_pre.max(v_pre),
                "wake flooring violated across renormalization for {id}"
            );
            assert!(tags.start_tag >= v_pre, "woken task owes credit");
        }
        sched.check_invariants();
    }
    assert!(
        sched.stats().renormalizations > 0,
        "run never crossed a renormalization boundary (v = {:?})",
        sched.virtual_time()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wake_flooring_survives_renormalization(
        weights in proptest::collection::vec(1u64..9, 2..6),
        rounds in proptest::collection::vec((1u8..9, 0u8..8), 20..60),
    ) {
        renorm_wake_flooring(&weights, &rounds);
    }
}
