//! # sfs — Surplus Fair Scheduling for symmetric multiprocessors
//!
//! A complete, from-scratch Rust reproduction of
//! *Surplus Fair Scheduling: A Proportional-Share CPU Scheduling
//! Algorithm for Symmetric Multiprocessors* (Chandra, Adler, Goyal,
//! Shenoy; OSDI 2000).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`sfs-core`) — the algorithms: weight readjustment (§2.1),
//!   GMS (§2.2), SFS (§2.3, §3), hierarchical SFS over tenant groups
//!   (`"sfs:groups(batch=sfq,frontend*3=sfs)"`), the SFQ / time-sharing /
//!   stride / BVT / WFQ / round-robin baselines, and the [`core::policy`]
//!   registry that names all of them.
//! * [`sim`] (`sfs-sim`) — a deterministic discrete-event SMP simulator.
//! * [`rt`] (`sfs-rt`) — a userspace scheduler gating real OS threads.
//! * [`experiment`] (`sfs-experiment`) — one front-end over both
//!   substrates: run a [`Scenario`](sim::Scenario) under any
//!   [`PolicySpec`](core::policy::PolicySpec), or compare a whole
//!   policy matrix in one call.
//! * [`trace`] (`sfs-trace`) — one structured event vocabulary emitted
//!   by both substrates: Perfetto export (open runs in
//!   <https://ui.perfetto.dev>), trace validation, and the JSON layer
//!   behind deterministic capture/replay.
//! * [`workloads`] (`sfs-workloads`) — the paper's application models
//!   (Inf, Interact, mpeg_play, gcc, disksim, dhrystone, short jobs).
//! * [`metrics`] (`sfs-metrics`) — time series, statistics, fairness
//!   indices, tables and ASCII charts.
//! * [`analyze`] (`sfs-analyze`) — concurrency-correctness tooling:
//!   ranked mutexes with an optional lock-order audit (`lock-audit`
//!   feature), a bounded interleaving checker over executor models,
//!   and the project lint engine behind `repro lint`.
//!
//! ## Quickstart
//!
//! Policies are named by parseable [`PolicySpec`](core::policy::PolicySpec)
//! strings — `"sfs:quantum=10ms"`, `"sfq:readjust"`, `"ts"` — and a
//! scenario plus a policy matrix is one [`Experiment`](experiment::Experiment)
//! call:
//!
//! ```
//! use sfs::prelude::*;
//!
//! // A two-CPU machine: weights 2:1:1 → shares 1/2 : 1/4 : 1/4.
//! let cfg = SimConfig {
//!     cpus: 2,
//!     duration: Duration::from_secs(2),
//!     ..SimConfig::default()
//! };
//! let scenario = Scenario::new("quick", cfg)
//!     .task(TaskSpec::new("db", 2, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("http", 1, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("batch", 1, BehaviorSpec::Inf));
//!
//! // Run one policy on the (deterministic) simulator...
//! let exp = Experiment::new(scenario.clone());
//! let report = exp.run("sfs:quantum=10ms").unwrap();
//! assert!(report.task("db").unwrap().service > report.task("http").unwrap().service);
//!
//! // ...or compare a whole matrix: SFS vs plain SFQ vs time sharing,
//! // with fairness-index deltas against the first (baseline) policy.
//! let cmp = exp.compare(["sfs:quantum=10ms", "sfq:quantum=10ms", "ts"]).unwrap();
//! println!("{}", cmp.to_table());
//! let deltas = cmp.deltas();
//! assert!(deltas[2].share_error_delta > 0.0, "time sharing ignores weights");
//! ```
//!
//! The same scenario, unchanged, also runs on **real OS threads** — the
//! scenario duration then becomes wall-clock time:
//!
//! ```no_run
//! use sfs::prelude::*;
//!
//! let cfg = SimConfig {
//!     cpus: 2,
//!     duration: Duration::from_millis(400), // wall clock on rt!
//!     ..SimConfig::default()
//! };
//! let scenario = Scenario::new("quick-rt", cfg)
//!     .task(TaskSpec::new("a", 3, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("b", 1, BehaviorSpec::Inf));
//! let report = Experiment::on(scenario, RtSubstrate::default())
//!     .run("sfs:quantum=2ms")
//!     .unwrap();
//! assert_eq!(report.substrate, "rt");
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

pub use sfs_analyze as analyze;
pub use sfs_core as core;
pub use sfs_experiment as experiment;
pub use sfs_metrics as metrics;
pub use sfs_rt as rt;
pub use sfs_sim as sim;
pub use sfs_trace as trace;
pub use sfs_workloads as workloads;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use sfs_core::prelude::*;
    pub use sfs_experiment::{
        Capture, ComparisonReport, Experiment, ExperimentError, ReplayReport, RtSubstrate,
        RunReport, SimSubstrate, Substrate, TaskFate, TaskOutcome,
    };
    pub use sfs_rt::{Executor, RtConfig, TaskCtx};
    pub use sfs_sim::{
        RunHealth, Scenario, ScenarioError, SimConfig, SimReport, StreamSpec, TaskSpec,
    };
    pub use sfs_trace::{EventTrace, TraceEvent, TraceRecorder};
    pub use sfs_workloads::{Behavior, BehaviorSpec, Phase};
}
