//! # sfs — Surplus Fair Scheduling for symmetric multiprocessors
//!
//! A complete, from-scratch Rust reproduction of
//! *Surplus Fair Scheduling: A Proportional-Share CPU Scheduling
//! Algorithm for Symmetric Multiprocessors* (Chandra, Adler, Goyal,
//! Shenoy; OSDI 2000).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`sfs-core`) — the algorithms: weight readjustment (§2.1),
//!   GMS (§2.2), SFS (§2.3, §3), and the SFQ / time-sharing / stride /
//!   BVT / WFQ / round-robin baselines.
//! * [`sim`] (`sfs-sim`) — a deterministic discrete-event SMP simulator.
//! * [`rt`] (`sfs-rt`) — a userspace scheduler gating real OS threads.
//! * [`workloads`] (`sfs-workloads`) — the paper's application models
//!   (Inf, Interact, mpeg_play, gcc, disksim, dhrystone, short jobs).
//! * [`metrics`] (`sfs-metrics`) — time series, statistics, fairness
//!   indices, tables and ASCII charts.
//!
//! ## Quickstart
//!
//! ```
//! use sfs::prelude::*;
//!
//! // A two-CPU machine under SFS: weights 2:1:1 → shares 1/2:1/4:1/4.
//! let cfg = SimConfig {
//!     cpus: 2,
//!     duration: Duration::from_secs(2),
//!     ..SimConfig::default()
//! };
//! let report = Scenario::new("quick", cfg)
//!     .task(TaskSpec::new("db", 2, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("http", 1, BehaviorSpec::Inf))
//!     .task(TaskSpec::new("batch", 1, BehaviorSpec::Inf))
//!     .run(Box::new(Sfs::new(2)));
//! assert!(report.task("db").unwrap().service > report.task("http").unwrap().service);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

pub use sfs_core as core;
pub use sfs_metrics as metrics;
pub use sfs_rt as rt;
pub use sfs_sim as sim;
pub use sfs_workloads as workloads;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use sfs_core::prelude::*;
    pub use sfs_rt::{Executor, RtConfig, TaskCtx};
    pub use sfs_sim::{Scenario, SimConfig, SimReport, StreamSpec, TaskSpec};
    pub use sfs_workloads::{Behavior, BehaviorSpec, Phase};
}
